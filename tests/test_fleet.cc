/**
 * @file
 * Fleet-layer tests: serial/parallel bit-identity, placement-policy unit
 * tests over fixed capacities, the dynamic per-core mode-control loop,
 * and N=1 fleet equivalence with sim::run.
 */

#include <cstdint>
#include <gtest/gtest.h>

#include "sim/fleet.h"
#include "sim/op_point_cache.h"
#include "sim/runner.h"

namespace stretch::sim
{
namespace
{

/** Force the next runFleet to really re-measure: determinism tests
 *  compare two *fresh* runs, not a run against its own memo. */
void
clearOperatingPoints()
{
    OperatingPointCache::instance().clear();
}

/** Small-but-real colocation config so fleet tests stay fast. */
RunConfig
smallConfig()
{
    RunConfig cfg;
    cfg.workload0 = "web_search";
    cfg.workload1 = "zeusmp";
    cfg.samples = 2;
    cfg.warmupOps = 2000;
    cfg.measureOps = 5000;
    return cfg;
}

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    for (ThreadId t = 0; t < numSmtThreads; ++t) {
        EXPECT_EQ(a.uipc[t], b.uipc[t]); // bit-identical, not approximate
        EXPECT_EQ(a.stats[t].committedOps, b.stats[t].committedOps);
        EXPECT_EQ(a.stats[t].fetchedOps, b.stats[t].fetchedOps);
        EXPECT_EQ(a.stats[t].branchMispredicts, b.stats[t].branchMispredicts);
        EXPECT_EQ(a.stats[t].dispatchStallRob, b.stats[t].dispatchStallRob);
        EXPECT_EQ(a.stats[t].robOccupancySum, b.stats[t].robOccupancySum);
        EXPECT_EQ(a.l1dMissCount[t], b.l1dMissCount[t]);
        EXPECT_EQ(a.l1iMissCount[t], b.l1iMissCount[t]);
        EXPECT_EQ(a.llcMissCount[t], b.llcMissCount[t]);
    }
    EXPECT_EQ(a.totalCycles, b.totalCycles);
}

TEST(FleetDeterminism, SerialAndParallelAreBitIdentical)
{
    FleetConfig fleet = homogeneousFleet(4, smallConfig());
    fleet.requests = 2000;

    FleetConfig serial = fleet;
    serial.threads = 1;
    FleetConfig parallel = fleet;
    parallel.threads = 4;

    FleetResult a = runFleet(serial);
    clearOperatingPoints();
    FleetResult b = runFleet(parallel);

    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (std::size_t i = 0; i < a.cores.size(); ++i)
        expectIdentical(a.cores[i], b.cores[i]);
    EXPECT_EQ(a.totalLsUipc, b.totalLsUipc);
    EXPECT_EQ(a.totalBatchUipc, b.totalBatchUipc);
    EXPECT_EQ(a.lsUipc.median, b.lsUipc.median);
    EXPECT_EQ(a.dispatch.latencyMs.p99, b.dispatch.latencyMs.p99);
    EXPECT_EQ(a.dispatch.placed, b.dispatch.placed);
    EXPECT_EQ(a.dispatch.throughputRps, b.dispatch.throughputRps);
}

TEST(FleetDeterminism, RunnerParallelSamplesAreBitIdentical)
{
    RunConfig cfg = smallConfig();
    cfg.samples = 4;

    RunConfig serial = cfg;
    serial.parallelism = 1;
    RunConfig parallel = cfg;
    parallel.parallelism = 4;

    expectIdentical(run(serial), run(parallel));
}

TEST(FleetDeterminism, SameSeedSameResults)
{
    FleetConfig fleet = homogeneousFleet(2, smallConfig());
    fleet.requests = 1000;
    FleetResult a = runFleet(fleet);
    clearOperatingPoints();
    FleetResult b = runFleet(fleet);
    for (std::size_t i = 0; i < a.cores.size(); ++i)
        expectIdentical(a.cores[i], b.cores[i]);
    EXPECT_EQ(a.dispatch.latencyMs.median, b.dispatch.latencyMs.median);
}

TEST(FleetEquivalence, SingleCoreFleetMatchesRun)
{
    RunConfig cfg = smallConfig();

    // The core keeps its own seed (homogeneousFleet would decorrelate it).
    FleetConfig fleet;
    fleet.cores = {cfg};
    fleet.requests = 500;

    FleetResult fr = runFleet(fleet);
    RunResult direct = run(cfg);

    ASSERT_EQ(fr.cores.size(), 1u);
    expectIdentical(fr.cores[0], direct);
    EXPECT_EQ(fr.totalLsUipc, direct.uipc[0]);
    EXPECT_EQ(fr.totalBatchUipc, direct.uipc[1]);
}

TEST(FleetDecorrelation, HomogeneousCoresGetDistinctSeeds)
{
    FleetConfig fleet = homogeneousFleet(4, smallConfig());
    for (std::size_t i = 0; i < fleet.cores.size(); ++i)
        for (std::size_t j = i + 1; j < fleet.cores.size(); ++j)
            EXPECT_NE(fleet.cores[i].seed, fleet.cores[j].seed);
}

// ---- Placement-policy unit tests over fixed capacities ----------------

TEST(Placement, RoundRobinSpreadsEvenly)
{
    DispatchOutcome out = dispatchRequests({1.0, 1.0, 1.0, 1.0},
                                           PlacementPolicy::RoundRobin,
                                           4000, 2.0, 7);
    for (std::uint64_t placed : out.placed)
        EXPECT_EQ(placed, 1000u);
}

TEST(Placement, RoundRobinSkipsNonServingCores)
{
    DispatchOutcome out = dispatchRequests({1.0, 0.0, 1.0},
                                           PlacementPolicy::RoundRobin,
                                           2000, 1.0, 7);
    EXPECT_EQ(out.placed[0], 1000u);
    EXPECT_EQ(out.placed[1], 0u);
    EXPECT_EQ(out.placed[2], 1000u);
}

TEST(Placement, LeastLoadedSendsMoreWorkToFasterCores)
{
    // A 4x faster core drains its backlog 4x quicker, so shortest-queue
    // placement must route it a clear majority of the stream.
    DispatchOutcome out = dispatchRequests({4.0, 1.0},
                                           PlacementPolicy::LeastLoaded,
                                           5000, 4.0, 7);
    EXPECT_GT(out.placed[0], out.placed[1]);
    EXPECT_GT(out.placed[0], 5000u * 6 / 10);
}

TEST(Placement, QosAwareAvoidsSlowCoresAtLowLoad)
{
    // At trivial load queues are almost always empty; predicted latency
    // is then demand/rate, which the fast core wins. The slow core only
    // sees the rare request arriving into a momentary backlog.
    DispatchOutcome out = dispatchRequests({4.0, 1.0},
                                           PlacementPolicy::QosAware,
                                           1000, 0.1, 7);
    EXPECT_GT(out.placed[0], 950u);
    EXPECT_LT(out.placed[1], 50u);
}

TEST(Placement, QosAwareBeatsRoundRobinTailOnSkewedFleet)
{
    const std::vector<double> rates{4.0, 1.0, 1.0, 0.5};
    DispatchOutcome rr = dispatchRequests(rates, PlacementPolicy::RoundRobin,
                                          8000, 3.0, 7);
    DispatchOutcome qos = dispatchRequests(rates, PlacementPolicy::QosAware,
                                           8000, 3.0, 7);
    EXPECT_LT(qos.latencyMs.p99, rr.latencyMs.p99);
    EXPECT_LT(qos.latencyMs.median, rr.latencyMs.median);
}

TEST(Placement, DispatchIsDeterministicInSeed)
{
    const std::vector<double> rates{2.0, 1.0};
    DispatchOutcome a = dispatchRequests(rates, PlacementPolicy::LeastLoaded,
                                         3000, 2.0, 99);
    DispatchOutcome b = dispatchRequests(rates, PlacementPolicy::LeastLoaded,
                                         3000, 2.0, 99);
    EXPECT_EQ(a.placed, b.placed);
    EXPECT_EQ(a.latencyMs.p99, b.latencyMs.p99);
    EXPECT_EQ(a.elapsedMs, b.elapsedMs);

    DispatchOutcome c = dispatchRequests(rates, PlacementPolicy::LeastLoaded,
                                         3000, 2.0, 100);
    EXPECT_NE(a.latencyMs.median, c.latencyMs.median);
}

TEST(Placement, AutoArrivalRateIsSeventyPercentOfCapacity)
{
    DispatchOutcome out = dispatchRequests({2.0, 3.0},
                                           PlacementPolicy::RoundRobin,
                                           100, 0.0, 7);
    EXPECT_DOUBLE_EQ(out.offeredRatePerMs, 0.7 * 5.0);
}

TEST(Placement, PolicyNamesAreStable)
{
    EXPECT_STREQ(toString(PlacementPolicy::RoundRobin), "round-robin");
    EXPECT_STREQ(toString(PlacementPolicy::LeastLoaded), "least-loaded");
    EXPECT_STREQ(toString(PlacementPolicy::PowerOfTwo), "power-of-two");
    EXPECT_STREQ(toString(PlacementPolicy::QosAware), "qos-aware");
    EXPECT_STREQ(toString(ModePolicyKind::Static), "static");
    EXPECT_STREQ(toString(ModePolicyKind::BacklogHysteresis),
                 "backlog-hysteresis");
    EXPECT_STREQ(toString(ModePolicyKind::SlackDriven), "slack-driven");
}

TEST(Placement, PowerOfTwoIsDeterministicInSeed)
{
    const std::vector<double> rates{2.0, 1.0, 1.0, 0.5};
    DispatchOutcome a = dispatchRequests(rates, PlacementPolicy::PowerOfTwo,
                                         4000, 2.5, 11);
    DispatchOutcome b = dispatchRequests(rates, PlacementPolicy::PowerOfTwo,
                                         4000, 2.5, 11);
    EXPECT_EQ(a.placed, b.placed);
    EXPECT_EQ(a.latencyMs.p99, b.latencyMs.p99);
    EXPECT_EQ(a.elapsedMs, b.elapsedMs);

    DispatchOutcome c = dispatchRequests(rates, PlacementPolicy::PowerOfTwo,
                                         4000, 2.5, 12);
    EXPECT_NE(a.placed, c.placed);
}

TEST(Placement, PowerOfTwoSpreadsAndSkipsNonServingCores)
{
    DispatchOutcome out = dispatchRequests({1.0, 0.0, 1.0, 1.0},
                                           PlacementPolicy::PowerOfTwo,
                                           6000, 2.0, 7);
    EXPECT_EQ(out.placed[1], 0u);
    // Load-aware two-choice placement keeps every serving core busy.
    for (std::size_t c : {0u, 2u, 3u})
        EXPECT_GT(out.placed[c], 6000u / 6);
}

TEST(Placement, PowerOfTwoBeatsRoundRobinTailOnSkewedFleet)
{
    const std::vector<double> rates{4.0, 1.0, 1.0, 0.5};
    DispatchOutcome rr = dispatchRequests(rates, PlacementPolicy::RoundRobin,
                                          8000, 3.0, 7);
    DispatchOutcome p2 = dispatchRequests(rates, PlacementPolicy::PowerOfTwo,
                                          8000, 3.0, 7);
    EXPECT_LT(p2.latencyMs.p99, rr.latencyMs.p99);
}

TEST(Placement, LeastLoadedSkipsZeroRateCores)
{
    DispatchOutcome out = dispatchRequests({2.0, 0.0, 1.0},
                                           PlacementPolicy::LeastLoaded,
                                           4000, 2.0, 7);
    EXPECT_EQ(out.placed[1], 0u);
    EXPECT_EQ(out.placed[0] + out.placed[2], 4000u);
    // Heterogeneous rates: the faster core drains quicker and takes more.
    EXPECT_GT(out.placed[0], out.placed[2]);
}

TEST(Placement, QosAwareSkipsZeroRateCores)
{
    DispatchOutcome out = dispatchRequests({0.0, 3.0, 1.0},
                                           PlacementPolicy::QosAware,
                                           4000, 2.5, 7);
    EXPECT_EQ(out.placed[0], 0u);
    EXPECT_GT(out.placed[1], out.placed[2]);
}

TEST(Placement, TailSummaryCarriesP999)
{
    DispatchOutcome out = dispatchRequests({1.0, 1.0},
                                           PlacementPolicy::LeastLoaded,
                                           5000, 1.5, 7);
    EXPECT_GE(out.latencyMs.p999, out.latencyMs.p99);
    EXPECT_LE(out.latencyMs.p999, out.latencyMs.max);
    EXPECT_GT(out.latencyMs.p999, 0.0);
}

// ---- Dynamic per-core mode control ------------------------------------

/** Two serving cores whose capacity depends on the engaged mode the way a
 *  Stretch core's does: B-mode sheds LS capacity, Q-mode buys extra. */
DispatchConfig
dynamicConfig()
{
    DispatchConfig cfg;
    cfg.rates = {ModeRates{2.0, 1.7, 2.4}, ModeRates{2.0, 1.7, 2.4}};
    cfg.policy = PlacementPolicy::LeastLoaded;
    cfg.requests = 20000;
    cfg.seed = 21;
    return cfg;
}

std::uint64_t
coreTransitions(const DispatchOutcome &out, std::size_t c)
{
    return out.modeStats[c].transitions;
}

TEST(ModeControl, StaticPolicyNeverTransitions)
{
    DispatchConfig cfg = dynamicConfig();
    DispatchOutcome out = dispatchRequests(cfg);
    ASSERT_EQ(out.modeStats.size(), 2u);
    for (std::size_t c = 0; c < 2; ++c) {
        EXPECT_EQ(coreTransitions(out, c), 0u);
        EXPECT_EQ(out.modeStats[c].flushMs, 0.0);
        EXPECT_EQ(out.modeStats[c].finalMode, StretchMode::Baseline);
        EXPECT_DOUBLE_EQ(
            out.modeStats[c].residencyMs[modeIndex(StretchMode::Baseline)],
            out.elapsedMs);
    }
}

TEST(ModeControl, StaticModeHoldsAndRetimesService)
{
    DispatchConfig cfg = dynamicConfig();
    cfg.control.staticMode = StretchMode::QosBoost;
    DispatchOutcome q = dispatchRequests(cfg);
    EXPECT_EQ(q.modeStats[0].finalMode, StretchMode::QosBoost);
    EXPECT_EQ(coreTransitions(q, 0), 0u);
    EXPECT_DOUBLE_EQ(
        q.modeStats[0].residencyMs[modeIndex(StretchMode::QosBoost)],
        q.elapsedMs);

    // The faster Q-mode rate must show up as lower sojourn times.
    cfg.control.staticMode = StretchMode::BatchBoost;
    DispatchOutcome b = dispatchRequests(cfg);
    EXPECT_LT(q.latencyMs.median, b.latencyMs.median);
}

TEST(ModeControl, BacklogPolicyTransitionsAndAccounts)
{
    DispatchConfig cfg = dynamicConfig();
    cfg.control.kind = ModePolicyKind::BacklogHysteresis;
    cfg.control.quantumMs = 0.5;
    DispatchOutcome out = dispatchRequests(cfg);

    std::uint64_t total = out.totalTransitions();
    EXPECT_GT(total, 0u);
    for (std::size_t c = 0; c < 2; ++c) {
        const CoreModeStats &m = out.modeStats[c];
        // Flush cost is charged per transition (up to accumulation
        // rounding: flushMs is summed one transition at a time).
        EXPECT_NEAR(m.flushMs,
                    static_cast<double>(m.transitions) *
                        cfg.control.flushCostMs,
                    1e-12 * static_cast<double>(m.transitions + 1));
        // Residency partitions the whole run.
        double residency =
            m.residencyMs[0] + m.residencyMs[1] + m.residencyMs[2];
        EXPECT_NEAR(residency, out.elapsedMs, 1e-9 * out.elapsedMs);
    }
}

TEST(ModeControl, WideHysteresisBandDoesNotFlapUnderSteadyLoad)
{
    // Steady moderate load inside a wide hysteresis band: the policy may
    // engage B-mode when the queue idles out, but must not oscillate.
    DispatchConfig cfg = dynamicConfig();
    cfg.rates = {ModeRates{2.0, 1.9, 2.2}, ModeRates{2.0, 1.9, 2.2}};
    cfg.arrivalRatePerMs = 0.5 * 4.0; // 50% load
    cfg.control.kind = ModePolicyKind::BacklogHysteresis;
    cfg.control.quantumMs = 0.5;
    cfg.control.engageBelowMs = 0.05; // near-idle queues only
    cfg.control.disengageAboveMs = 8.0;
    cfg.control.qmodeAboveMs = 50.0; // far outside steady-state backlog
    DispatchOutcome out = dispatchRequests(cfg);

    for (std::size_t c = 0; c < 2; ++c) {
        // Thousands of quantum boundaries; a flapping controller would
        // rack up transitions at every other one.
        EXPECT_LE(coreTransitions(out, c), 4u);
        EXPECT_EQ(out.modeStats[c].residencyMs[modeIndex(
                      StretchMode::QosBoost)],
                  0.0);
    }
}

TEST(ModeControl, OverloadEscalatesToQMode)
{
    DispatchConfig cfg = dynamicConfig();
    cfg.arrivalRatePerMs = 1.3 * 4.0; // 130% of baseline capacity
    cfg.control.kind = ModePolicyKind::BacklogHysteresis;
    cfg.control.quantumMs = 0.5;
    DispatchOutcome out = dispatchRequests(cfg);

    // While arrivals keep coming the backlog is unbounded, so Q-mode
    // dominates the run; once the stream ends the queue drains and the
    // policy may step back down, so the final mode is not asserted.
    for (std::size_t c = 0; c < 2; ++c) {
        EXPECT_GE(coreTransitions(out, c), 1u);
        EXPECT_GT(out.modeStats[c].residencyMs[modeIndex(
                      StretchMode::QosBoost)],
                  0.5 * out.elapsedMs);
    }
}

TEST(ModeControl, SlackDrivenFollowsTheMonitorLadder)
{
    DispatchConfig cfg = dynamicConfig();
    cfg.arrivalRatePerMs = 0.4 * 4.0; // ample slack
    cfg.control.kind = ModePolicyKind::SlackDriven;
    cfg.control.quantumMs = 0.5;
    cfg.control.monitor.qosTarget = 20.0; // sojourn target in ms, generous
    DispatchOutcome out = dispatchRequests(cfg);

    // With latencies far under target the ladder engages B-mode and
    // stays there: one transition per core, B-mode dominating residency.
    for (std::size_t c = 0; c < 2; ++c) {
        EXPECT_GE(coreTransitions(out, c), 1u);
        EXPECT_GT(out.modeStats[c].residencyMs[modeIndex(
                      StretchMode::BatchBoost)],
                  0.8 * out.elapsedMs);
        EXPECT_EQ(out.modeStats[c].finalMode, StretchMode::BatchBoost);
    }
}

TEST(ModeControl, ZeroRateCoresCarryNoModeTimeline)
{
    DispatchConfig cfg = dynamicConfig();
    cfg.rates.push_back(ModeRates{}); // a core that cannot serve
    cfg.control.kind = ModePolicyKind::BacklogHysteresis;
    DispatchOutcome out = dispatchRequests(cfg);
    const CoreModeStats &idle = out.modeStats[2];
    EXPECT_EQ(idle.transitions, 0u);
    EXPECT_EQ(idle.residencyMs[0] + idle.residencyMs[1] + idle.residencyMs[2],
              0.0);
    EXPECT_EQ(out.placed[2], 0u);
}

TEST(ModeControl, BurstyArrivalsAreDeterministic)
{
    DispatchConfig cfg = dynamicConfig();
    cfg.burstRatio = 4.0;
    cfg.demandLogSigma = 0.4;
    cfg.control.kind = ModePolicyKind::BacklogHysteresis;
    DispatchOutcome a = dispatchRequests(cfg);
    DispatchOutcome b = dispatchRequests(cfg);
    EXPECT_EQ(a.placed, b.placed);
    EXPECT_EQ(a.latencyMs.p999, b.latencyMs.p999);
    EXPECT_EQ(a.totalTransitions(), b.totalTransitions());
}

// ---- Co-runner throttling (the closed CPI² actuation loop) ------------

/** Overloaded two-core config whose monitor must walk the full ladder:
 *  violations step to Q-mode, persist, and order throttling; the
 *  throttled LS rate is well above every mode rate so actuation shows. */
DispatchConfig
throttleConfig()
{
    DispatchConfig cfg;
    cfg.rates = {ModeRates{2.0, 1.7, 2.4, 3.4},
                 ModeRates{2.0, 1.7, 2.4, 3.4}};
    cfg.policy = PlacementPolicy::LeastLoaded;
    cfg.requests = 20000;
    cfg.seed = 33;
    cfg.arrivalRatePerMs = 1.1 * 4.0; // 110% of baseline capacity
    cfg.control.kind = ModePolicyKind::SlackDriven;
    cfg.control.quantumMs = 0.5;
    cfg.control.monitor.qosTarget = 5.0; // ms of sojourn; overload violates
    return cfg;
}

TEST(ThrottleControl, LadderEngagesAndDisengagesWithHysteresis)
{
    DispatchOutcome out = dispatchRequests(throttleConfig());

    EXPECT_GE(out.totalThrottleEngagements(), 1u);
    EXPECT_GT(out.totalThrottleMs(), 0.0);
    for (std::size_t c = 0; c < 2; ++c) {
        const CoreModeStats &m = out.modeStats[c];
        // The ladder really cycles: a second engagement implies a lift in
        // between, and the post-stream drain recovers the tail so the
        // run ends unthrottled.
        EXPECT_GE(m.throttleEngagements, 2u);
        EXPECT_FALSE(m.throttledAtEnd);
        EXPECT_LT(m.throttleMs, out.elapsedMs);
        // Engagement needs violationsBeforeThrottle+1 violating windows
        // and release needs deep recovery, so a sane controller cycles
        // far slower than the quantum clock (no flapping).
        double quanta = out.elapsedMs / 0.5;
        EXPECT_LT(static_cast<double>(m.throttleEngagements),
                  quanta / 8.0);
        // The monitor saw real per-request CPI signal.
        EXPECT_GT(m.cpiOutliers, 0u);
    }
}

TEST(ThrottleControl, ActuationCutsTailVsNeverThrottle)
{
    DispatchConfig cfg = throttleConfig();
    cfg.control.honorThrottle = false;
    DispatchOutcome never = dispatchRequests(cfg);
    EXPECT_EQ(never.totalThrottleMs(), 0.0);
    EXPECT_EQ(never.totalThrottleEngagements(), 0u);

    cfg.control.honorThrottle = true;
    DispatchOutcome acted = dispatchRequests(cfg);
    EXPECT_GT(acted.totalThrottleMs(), 0.0);

    // Suppressing the co-runner frees real LS capacity: the tail and the
    // makespan both improve against the identical arrival stream.
    EXPECT_LT(acted.latencyMs.p99, never.latencyMs.p99);
    EXPECT_LT(acted.latencyMs.median, never.latencyMs.median);
}

TEST(ThrottleControl, ZeroThrottledRateOnlyMarksResidency)
{
    // throttledLs == 0 means "no throttled operating point measured":
    // the dispatcher still tracks residency, but rates never change, so
    // the outcome is identical to ignoring the throttle decision.
    DispatchConfig cfg = throttleConfig();
    for (ModeRates &r : cfg.rates)
        r.throttledLs = 0.0;
    DispatchOutcome marked = dispatchRequests(cfg);
    cfg.control.honorThrottle = false;
    DispatchOutcome ignored = dispatchRequests(cfg);

    EXPECT_GT(marked.totalThrottleMs(), 0.0);
    EXPECT_EQ(marked.latencyMs.p99, ignored.latencyMs.p99);
    EXPECT_EQ(marked.placed, ignored.placed);
}

// ---- Diurnal load replay ----------------------------------------------

TEST(DiurnalDispatch, TimelineFollowsTheTraceDeterministically)
{
    DispatchConfig cfg;
    cfg.rates = {ModeRates::flat(2.0), ModeRates::flat(2.0)};
    cfg.policy = PlacementPolicy::LeastLoaded;
    cfg.seed = 77;
    cfg.diurnalTrace = queueing::DiurnalTrace::webSearchCluster();
    cfg.msPerHour = 20.0;
    cfg.timelineBucketMs = 20.0; // one bucket per replayed hour
    cfg.arrivalRatePerMs = 3.5;  // peak rate, below capacity
    // Enough arrivals to cover a full replayed day at the mean rate.
    cfg.requests = static_cast<std::uint64_t>(
        cfg.arrivalRatePerMs * cfg.diurnalTrace->meanLoad() * 24.0 *
        cfg.msPerHour);

    DispatchOutcome a = dispatchRequests(cfg);
    DispatchOutcome b = dispatchRequests(cfg);
    EXPECT_EQ(a.placed, b.placed);
    EXPECT_EQ(a.latencyMs.p99, b.latencyMs.p99);
    ASSERT_EQ(a.timeline.size(), b.timeline.size());

    // The timeline partitions every completion and mirrors the trace:
    // the midday plateau (hours 12-15) far outdraws the overnight trough
    // (hours 2-5).
    ASSERT_GE(a.timeline.size(), 22u);
    std::uint64_t total = 0, night = 0, midday = 0;
    for (std::size_t h = 0; h < a.timeline.size(); ++h) {
        const TimelineBucket &tb = a.timeline[h];
        EXPECT_EQ(tb.startMs, static_cast<double>(h) * 20.0);
        EXPECT_EQ(tb.p50Ms, b.timeline[h].p50Ms);
        total += tb.completions;
        if (h >= 2 && h <= 5)
            night += tb.completions;
        if (h >= 12 && h <= 15)
            midday += tb.completions;
    }
    EXPECT_EQ(total, cfg.requests);
    EXPECT_LT(static_cast<double>(night),
              0.75 * static_cast<double>(midday));
    EXPECT_NEAR(a.timeline[14].loadFraction,
                cfg.diurnalTrace->loadAt(14.5), 1e-12);
}

TEST(FleetDiurnal, ReplayWithThrottlingIsBitIdenticalAcrossThreads)
{
    FleetConfig fleet = homogeneousFleet(2, smallConfig());
    fleet.policy = PlacementPolicy::LeastLoaded;
    fleet.diurnalTrace = queueing::DiurnalTrace::youtubeCluster();
    fleet.msPerHour = 15.0;
    fleet.timelineBucketMs = 15.0;
    fleet.requests = 3000;
    fleet.modeControl.kind = ModePolicyKind::SlackDriven;
    fleet.modeControl.quantumMs = 0.5;
    fleet.modeControl.monitor.qosTarget = 1.0;

    FleetConfig serial = fleet;
    serial.threads = 1;
    FleetConfig parallel = fleet;
    parallel.threads = 0;
    FleetResult a = runFleet(serial);
    clearOperatingPoints();
    FleetResult b = runFleet(parallel);

    EXPECT_EQ(a.dispatch.placed, b.dispatch.placed);
    EXPECT_EQ(a.dispatch.latencyMs.p99, b.dispatch.latencyMs.p99);
    EXPECT_EQ(a.effectiveBatchUipc, b.effectiveBatchUipc);
    ASSERT_EQ(a.dispatch.timeline.size(), b.dispatch.timeline.size());
    for (std::size_t h = 0; h < a.dispatch.timeline.size(); ++h) {
        EXPECT_EQ(a.dispatch.timeline[h].completions,
                  b.dispatch.timeline[h].completions);
        EXPECT_EQ(a.dispatch.timeline[h].p99Ms,
                  b.dispatch.timeline[h].p99Ms);
        EXPECT_EQ(a.dispatch.timeline[h].throttledCoreMs,
                  b.dispatch.timeline[h].throttledCoreMs);
    }
    for (std::size_t c = 0; c < a.dispatch.modeStats.size(); ++c) {
        EXPECT_EQ(a.dispatch.modeStats[c].throttleMs,
                  b.dispatch.modeStats[c].throttleMs);
        EXPECT_EQ(a.dispatch.modeStats[c].throttleEngagements,
                  b.dispatch.modeStats[c].throttleEngagements);
        EXPECT_EQ(a.dispatch.modeStats[c].cpiOutliers,
                  b.dispatch.modeStats[c].cpiOutliers);
    }
}

TEST(FleetThrottle, ClosedLoopSuppressesBatchAndMovesTheTail)
{
    // The acceptance bar: against a never-throttle baseline over the same
    // stream, honouring throttleCoRunner must measurably change batch
    // throughput (suppressed while throttled) and the p99 tail.
    FleetConfig fleet = homogeneousFleet(2, smallConfig());
    fleet.policy = PlacementPolicy::LeastLoaded;
    fleet.requests = 8000;
    fleet.threads = 0;
    fleet.modeControl.kind = ModePolicyKind::SlackDriven;
    fleet.modeControl.quantumMs = 0.5;
    // Tight sojourn target at the default 70%-of-capacity load: the
    // ladder violates, steps to Q-mode, and orders throttling.
    fleet.modeControl.monitor.qosTarget = 0.8;

    FleetResult throttled = runFleet(fleet);
    FleetConfig never = fleet;
    never.modeControl.honorThrottle = false;
    FleetResult baseline = runFleet(never);

    // The whole comparison is thread-count independent: a serial rerun
    // of the throttled fleet reproduces it bit for bit.
    FleetConfig serial = fleet;
    serial.threads = 1;
    clearOperatingPoints();
    FleetResult repeat = runFleet(serial);
    EXPECT_EQ(repeat.effectiveBatchUipc, throttled.effectiveBatchUipc);
    EXPECT_EQ(repeat.dispatch.latencyMs.p99,
              throttled.dispatch.latencyMs.p99);
    EXPECT_EQ(repeat.dispatch.totalThrottleMs(),
              throttled.dispatch.totalThrottleMs());

    ASSERT_GT(throttled.dispatch.totalThrottleEngagements(), 0u);
    ASSERT_GT(throttled.dispatch.totalThrottleMs(), 0.0);
    EXPECT_EQ(baseline.dispatch.totalThrottleMs(), 0.0);

    // The throttled operating point was measured: LS gains capacity over
    // Q-mode, the batch side collapses below every mode's rate.
    for (std::size_t c = 0; c < 2; ++c) {
        EXPECT_GT(throttled.modeRates[c].throttledLs,
                  throttled.modeRates[c].qmode);
        EXPECT_GT(throttled.modeRates[c].throttledLs, 0.0);
        const FleetResult::BatchOperatingPoints &bp =
            throttled.batchPoints[c];
        EXPECT_GT(bp.throttled, 0.0);
        for (double by_mode : bp.byMode)
            EXPECT_LT(bp.throttled, by_mode);
    }

    // Batch throughput is measurably suppressed and the tail moves.
    EXPECT_LT(throttled.effectiveBatchUipc, baseline.effectiveBatchUipc);
    EXPECT_LT(throttled.dispatch.latencyMs.p99,
              baseline.dispatch.latencyMs.p99);
}

TEST(FleetHeterogeneous, SlotParametersArePlumbedNotBaked)
{
    // heterogeneousFleet must carry slot overrides in `slots` (applied
    // at measurement time), leave the cloned RunConfigs untouched, and
    // decorrelate per-core seeds exactly like homogeneousFleet.
    RunConfig base = smallConfig();
    std::vector<CoreSlot> slots(3);
    slots[1].robEntries = 96;
    slots[1].lsqEntries = 32;
    slots[2].bmodeSkew = SkewConfig{28, 60};

    FleetConfig fleet = heterogeneousFleet(base, slots);
    ASSERT_EQ(fleet.cores.size(), 3u);
    ASSERT_EQ(fleet.slots.size(), 3u);
    EXPECT_EQ(fleet.slots[0].robEntries, 0u); // zero = keep RunConfig's
    EXPECT_EQ(fleet.slots[1].robEntries, 96u);
    EXPECT_EQ(fleet.slots[1].lsqEntries, 32u);
    EXPECT_EQ(fleet.slots[2].bmodeSkew.lsRobEntries, 28u);
    EXPECT_EQ(fleet.seed, base.seed);
    for (std::size_t i = 0; i < fleet.cores.size(); ++i) {
        EXPECT_EQ(fleet.cores[i].workload0, base.workload0);
        EXPECT_EQ(fleet.cores[i].workload1, base.workload1);
        // Physical sizes stay the base's; the override lives in the slot.
        EXPECT_EQ(fleet.cores[i].robEntries, base.robEntries);
        EXPECT_EQ(fleet.cores[i].lsqEntries, base.lsqEntries);
        EXPECT_EQ(fleet.cores[i].seed, mixSeed(base.seed, i));
    }
}

TEST(FleetHeterogeneous, AllZeroSlotsMatchAHomogeneousFleet)
{
    // A zero-valued CoreSlot must be a no-op: same measured capacities
    // and dispatch as the slot-free fleet of the same size.
    RunConfig base = smallConfig();
    FleetConfig het = heterogeneousFleet(base, std::vector<CoreSlot>(2));
    FleetConfig hom = homogeneousFleet(2, base);
    het.requests = hom.requests = 300;

    FleetResult a = runFleet(het);
    FleetResult b = runFleet(hom);
    ASSERT_EQ(a.serviceRatePerMs.size(), b.serviceRatePerMs.size());
    for (std::size_t c = 0; c < 2; ++c)
        EXPECT_EQ(a.serviceRatePerMs[c], b.serviceRatePerMs[c]);
    EXPECT_EQ(a.dispatch.latencyMs.p99, b.dispatch.latencyMs.p99);
    EXPECT_EQ(a.dispatch.placed, b.dispatch.placed);
}

TEST(FleetHeterogeneous, SlotsShapeMeasuredCapacity)
{
    RunConfig base = smallConfig();
    std::vector<CoreSlot> slots(2);
    slots[1].robEntries = 96; // a little core: half the window
    slots[1].lsqEntries = 32;
    slots[1].bmodeSkew = SkewConfig{28, 68};
    slots[1].qmodeSkew = SkewConfig{68, 28};

    FleetConfig fleet = heterogeneousFleet(base, slots);
    fleet.policy = PlacementPolicy::LeastLoaded;
    fleet.requests = 3000;
    fleet.threads = 0;
    fleet.modeControl.kind = ModePolicyKind::SlackDriven;
    fleet.modeControl.monitor.qosTarget = 1.0;

    FleetResult r = runFleet(fleet);

    // The little core's window halves, so every measured operating point
    // sits below the big core's.
    EXPECT_LT(r.modeRates[1].baseline, r.modeRates[0].baseline);
    EXPECT_LT(r.modeRates[1].qmode, r.modeRates[0].qmode);
    EXPECT_LT(r.modeRates[1].throttledLs, r.modeRates[0].throttledLs);
    // Per-slot skews preserve the Stretch ordering within each class.
    for (std::size_t c = 0; c < 2; ++c) {
        EXPECT_LT(r.modeRates[c].bmode, r.modeRates[c].baseline);
        EXPECT_GT(r.modeRates[c].qmode, r.modeRates[c].bmode);
    }
    // The load-aware dispatcher leans on the faster big core.
    EXPECT_GT(r.dispatch.placed[0], r.dispatch.placed[1]);
}

TEST(FleetDynamicModes, ClosedLoopIsBitIdenticalSerialVsParallel)
{
    FleetConfig fleet = homogeneousFleet(3, smallConfig());
    fleet.requests = 4000;
    fleet.policy = PlacementPolicy::LeastLoaded;
    fleet.modeControl.kind = ModePolicyKind::BacklogHysteresis;
    fleet.modeControl.quantumMs = 0.5;

    FleetConfig serial = fleet;
    serial.threads = 1;
    FleetConfig parallel = fleet;
    parallel.threads = 0;

    FleetResult a = runFleet(serial);
    clearOperatingPoints();
    FleetResult b = runFleet(parallel);

    // The acceptance bar: a dynamic fleet run actually flips mode
    // registers, reports residency, and parallelism changes nothing.
    EXPECT_GT(a.dispatch.totalTransitions(), 0u);
    ASSERT_EQ(a.dispatch.modeStats.size(), b.dispatch.modeStats.size());
    for (std::size_t c = 0; c < a.dispatch.modeStats.size(); ++c) {
        const CoreModeStats &ma = a.dispatch.modeStats[c];
        const CoreModeStats &mb = b.dispatch.modeStats[c];
        EXPECT_EQ(ma.transitions, mb.transitions);
        EXPECT_EQ(ma.finalMode, mb.finalMode);
        for (std::size_t m = 0; m < numStretchModes; ++m)
            EXPECT_EQ(ma.residencyMs[m], mb.residencyMs[m]); // bit-identical
        EXPECT_EQ(a.modeRates[c].baseline, b.modeRates[c].baseline);
        EXPECT_EQ(a.modeRates[c].bmode, b.modeRates[c].bmode);
        EXPECT_EQ(a.modeRates[c].qmode, b.modeRates[c].qmode);
    }
    EXPECT_EQ(a.dispatch.latencyMs.p99, b.dispatch.latencyMs.p99);
    EXPECT_EQ(a.dispatch.latencyMs.p999, b.dispatch.latencyMs.p999);
    EXPECT_EQ(a.dispatch.placed, b.dispatch.placed);

    // The three operating points were really measured: B-mode (56-entry
    // LS ROB) sheds LS capacity relative to Baseline (96) and Q-mode
    // (136); the Q-vs-Baseline gain is small enough to be noisy at this
    // test's tiny sampling, so only the robust orderings are asserted.
    for (const ModeRates &r : a.modeRates) {
        EXPECT_LT(r.bmode, r.baseline);
        EXPECT_GT(r.qmode, r.bmode);
    }
}

} // namespace
} // namespace stretch::sim

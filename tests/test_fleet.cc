/**
 * @file
 * Fleet-layer tests: serial/parallel bit-identity, placement-policy unit
 * tests over fixed capacities, and N=1 fleet equivalence with sim::run.
 */

#include <cstdint>
#include <gtest/gtest.h>

#include "sim/fleet.h"
#include "sim/runner.h"

namespace stretch::sim
{
namespace
{

/** Small-but-real colocation config so fleet tests stay fast. */
RunConfig
smallConfig()
{
    RunConfig cfg;
    cfg.workload0 = "web_search";
    cfg.workload1 = "zeusmp";
    cfg.samples = 2;
    cfg.warmupOps = 2000;
    cfg.measureOps = 5000;
    return cfg;
}

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    for (ThreadId t = 0; t < numSmtThreads; ++t) {
        EXPECT_EQ(a.uipc[t], b.uipc[t]); // bit-identical, not approximate
        EXPECT_EQ(a.stats[t].committedOps, b.stats[t].committedOps);
        EXPECT_EQ(a.stats[t].fetchedOps, b.stats[t].fetchedOps);
        EXPECT_EQ(a.stats[t].branchMispredicts, b.stats[t].branchMispredicts);
        EXPECT_EQ(a.stats[t].dispatchStallRob, b.stats[t].dispatchStallRob);
        EXPECT_EQ(a.stats[t].robOccupancySum, b.stats[t].robOccupancySum);
        EXPECT_EQ(a.l1dMissCount[t], b.l1dMissCount[t]);
        EXPECT_EQ(a.l1iMissCount[t], b.l1iMissCount[t]);
        EXPECT_EQ(a.llcMissCount[t], b.llcMissCount[t]);
    }
    EXPECT_EQ(a.totalCycles, b.totalCycles);
}

TEST(FleetDeterminism, SerialAndParallelAreBitIdentical)
{
    FleetConfig fleet = homogeneousFleet(4, smallConfig());
    fleet.requests = 2000;

    FleetConfig serial = fleet;
    serial.threads = 1;
    FleetConfig parallel = fleet;
    parallel.threads = 4;

    FleetResult a = runFleet(serial);
    FleetResult b = runFleet(parallel);

    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (std::size_t i = 0; i < a.cores.size(); ++i)
        expectIdentical(a.cores[i], b.cores[i]);
    EXPECT_EQ(a.totalLsUipc, b.totalLsUipc);
    EXPECT_EQ(a.totalBatchUipc, b.totalBatchUipc);
    EXPECT_EQ(a.lsUipc.median, b.lsUipc.median);
    EXPECT_EQ(a.dispatch.latencyMs.p99, b.dispatch.latencyMs.p99);
    EXPECT_EQ(a.dispatch.placed, b.dispatch.placed);
    EXPECT_EQ(a.dispatch.throughputRps, b.dispatch.throughputRps);
}

TEST(FleetDeterminism, RunnerParallelSamplesAreBitIdentical)
{
    RunConfig cfg = smallConfig();
    cfg.samples = 4;

    RunConfig serial = cfg;
    serial.parallelism = 1;
    RunConfig parallel = cfg;
    parallel.parallelism = 4;

    expectIdentical(run(serial), run(parallel));
}

TEST(FleetDeterminism, SameSeedSameResults)
{
    FleetConfig fleet = homogeneousFleet(2, smallConfig());
    fleet.requests = 1000;
    FleetResult a = runFleet(fleet);
    FleetResult b = runFleet(fleet);
    for (std::size_t i = 0; i < a.cores.size(); ++i)
        expectIdentical(a.cores[i], b.cores[i]);
    EXPECT_EQ(a.dispatch.latencyMs.median, b.dispatch.latencyMs.median);
}

TEST(FleetEquivalence, SingleCoreFleetMatchesRun)
{
    RunConfig cfg = smallConfig();

    // The core keeps its own seed (homogeneousFleet would decorrelate it).
    FleetConfig fleet;
    fleet.cores = {cfg};
    fleet.requests = 500;

    FleetResult fr = runFleet(fleet);
    RunResult direct = run(cfg);

    ASSERT_EQ(fr.cores.size(), 1u);
    expectIdentical(fr.cores[0], direct);
    EXPECT_EQ(fr.totalLsUipc, direct.uipc[0]);
    EXPECT_EQ(fr.totalBatchUipc, direct.uipc[1]);
}

TEST(FleetDecorrelation, HomogeneousCoresGetDistinctSeeds)
{
    FleetConfig fleet = homogeneousFleet(4, smallConfig());
    for (std::size_t i = 0; i < fleet.cores.size(); ++i)
        for (std::size_t j = i + 1; j < fleet.cores.size(); ++j)
            EXPECT_NE(fleet.cores[i].seed, fleet.cores[j].seed);
}

// ---- Placement-policy unit tests over fixed capacities ----------------

TEST(Placement, RoundRobinSpreadsEvenly)
{
    DispatchOutcome out = dispatchRequests({1.0, 1.0, 1.0, 1.0},
                                           PlacementPolicy::RoundRobin,
                                           4000, 2.0, 7);
    for (std::uint64_t placed : out.placed)
        EXPECT_EQ(placed, 1000u);
}

TEST(Placement, RoundRobinSkipsNonServingCores)
{
    DispatchOutcome out = dispatchRequests({1.0, 0.0, 1.0},
                                           PlacementPolicy::RoundRobin,
                                           2000, 1.0, 7);
    EXPECT_EQ(out.placed[0], 1000u);
    EXPECT_EQ(out.placed[1], 0u);
    EXPECT_EQ(out.placed[2], 1000u);
}

TEST(Placement, LeastLoadedSendsMoreWorkToFasterCores)
{
    // A 4x faster core drains its backlog 4x quicker, so shortest-queue
    // placement must route it a clear majority of the stream.
    DispatchOutcome out = dispatchRequests({4.0, 1.0},
                                           PlacementPolicy::LeastLoaded,
                                           5000, 4.0, 7);
    EXPECT_GT(out.placed[0], out.placed[1]);
    EXPECT_GT(out.placed[0], 5000u * 6 / 10);
}

TEST(Placement, QosAwareAvoidsSlowCoresAtLowLoad)
{
    // At trivial load queues are almost always empty; predicted latency
    // is then demand/rate, which the fast core wins. The slow core only
    // sees the rare request arriving into a momentary backlog.
    DispatchOutcome out = dispatchRequests({4.0, 1.0},
                                           PlacementPolicy::QosAware,
                                           1000, 0.1, 7);
    EXPECT_GT(out.placed[0], 950u);
    EXPECT_LT(out.placed[1], 50u);
}

TEST(Placement, QosAwareBeatsRoundRobinTailOnSkewedFleet)
{
    const std::vector<double> rates{4.0, 1.0, 1.0, 0.5};
    DispatchOutcome rr = dispatchRequests(rates, PlacementPolicy::RoundRobin,
                                          8000, 3.0, 7);
    DispatchOutcome qos = dispatchRequests(rates, PlacementPolicy::QosAware,
                                           8000, 3.0, 7);
    EXPECT_LT(qos.latencyMs.p99, rr.latencyMs.p99);
    EXPECT_LT(qos.latencyMs.median, rr.latencyMs.median);
}

TEST(Placement, DispatchIsDeterministicInSeed)
{
    const std::vector<double> rates{2.0, 1.0};
    DispatchOutcome a = dispatchRequests(rates, PlacementPolicy::LeastLoaded,
                                         3000, 2.0, 99);
    DispatchOutcome b = dispatchRequests(rates, PlacementPolicy::LeastLoaded,
                                         3000, 2.0, 99);
    EXPECT_EQ(a.placed, b.placed);
    EXPECT_EQ(a.latencyMs.p99, b.latencyMs.p99);
    EXPECT_EQ(a.elapsedMs, b.elapsedMs);

    DispatchOutcome c = dispatchRequests(rates, PlacementPolicy::LeastLoaded,
                                         3000, 2.0, 100);
    EXPECT_NE(a.latencyMs.median, c.latencyMs.median);
}

TEST(Placement, AutoArrivalRateIsSeventyPercentOfCapacity)
{
    DispatchOutcome out = dispatchRequests({2.0, 3.0},
                                           PlacementPolicy::RoundRobin,
                                           100, 0.0, 7);
    EXPECT_DOUBLE_EQ(out.offeredRatePerMs, 0.7 * 5.0);
}

TEST(Placement, PolicyNamesAreStable)
{
    EXPECT_STREQ(toString(PlacementPolicy::RoundRobin), "round-robin");
    EXPECT_STREQ(toString(PlacementPolicy::LeastLoaded), "least-loaded");
    EXPECT_STREQ(toString(PlacementPolicy::QosAware), "qos-aware");
}

} // namespace
} // namespace stretch::sim

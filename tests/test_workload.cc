/**
 * @file
 * Tests for the workload substrate: profile registry, generator
 * determinism, and parameterized property sweeps over all 33 profiles
 * (instruction mix, address-region bounds, dependency structure).
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "workload/generator.h"
#include "workload/profiles.h"

namespace stretch
{
namespace
{

TEST(Profiles, RegistryComplete)
{
    EXPECT_EQ(workloads::all().size(), 33u);
    EXPECT_EQ(workloads::latencySensitiveNames().size(), 4u);
    EXPECT_EQ(workloads::batchNames().size(), 29u);
}

TEST(Profiles, PaperBatchRoster)
{
    // The paper evaluates all 29 SPEC CPU2006 benchmarks (Section V-B).
    const std::set<std::string> expected = {
        "astar",     "bwaves",   "bzip2",   "cactusADM",  "calculix",
        "dealII",    "gamess",   "gcc",     "GemsFDTD",   "gobmk",
        "gromacs",   "h264ref",  "hmmer",   "lbm",        "leslie3d",
        "libquantum", "mcf",     "milc",    "namd",       "omnetpp",
        "perlbench", "povray",   "sjeng",   "soplex",     "sphinx3",
        "tonto",     "wrf",      "xalancbmk", "zeusmp"};
    std::set<std::string> actual(workloads::batchNames().begin(),
                                 workloads::batchNames().end());
    EXPECT_EQ(actual, expected);
}

TEST(Profiles, ByNameAndExists)
{
    EXPECT_TRUE(workloads::exists("web_search"));
    EXPECT_FALSE(workloads::exists("nonexistent"));
    EXPECT_EQ(workloads::byName("zeusmp").name, "zeusmp");
    EXPECT_TRUE(workloads::byName("data_serving").latencySensitive);
    EXPECT_FALSE(workloads::byName("mcf").latencySensitive);
}

TEST(Generator, Deterministic)
{
    const SynthProfile &p = workloads::byName("web_search");
    TraceGenerator a(p, 1234, 0), b(p, 1234, 0);
    for (int i = 0; i < 5000; ++i) {
        const MicroOp &oa = a.next();
        const MicroOp &ob = b.next();
        ASSERT_EQ(oa.pc, ob.pc);
        ASSERT_EQ(static_cast<int>(oa.cls), static_cast<int>(ob.cls));
        ASSERT_EQ(oa.effAddr, ob.effAddr);
        ASSERT_EQ(oa.taken, ob.taken);
        ASSERT_EQ(oa.dest, ob.dest);
    }
}

TEST(Generator, SeedsDiffer)
{
    const SynthProfile &p = workloads::byName("mcf");
    TraceGenerator a(p, 1, 0), b(p, 2, 0);
    unsigned diff = 0;
    for (int i = 0; i < 1000; ++i) {
        const MicroOp oa = a.next();
        const MicroOp ob = b.next();
        if (oa.effAddr != ob.effAddr || oa.pc != ob.pc)
            ++diff;
    }
    EXPECT_GT(diff, 100u);
}

TEST(Generator, AsidSeparatesAddressSpaces)
{
    const SynthProfile &p = workloads::byName("gcc");
    TraceGenerator a(p, 1, 0), b(p, 1, 1);
    EXPECT_NE(a.codeBase(), b.codeBase());
    EXPECT_LT(a.codeBase(), b.codeBase());
}

TEST(Generator, ChaseChainSerialisation)
{
    // Every chase load must consume the register that the previous chase
    // load of the same chain produced.
    const SynthProfile &p = workloads::byName("data_serving");
    TraceGenerator gen(p, 77, 0);
    std::map<unsigned, std::uint8_t> last_chain_dest;
    unsigned chase_seen = 0;
    for (int i = 0; i < 60000; ++i) {
        const MicroOp op = gen.next();
        if (op.cls == OpClass::Load && op.isChase) {
            ++chase_seen;
            // Chain registers are the dedicated low registers.
            EXPECT_EQ(op.src1, op.dest);
            EXPECT_GE(op.dest, 8);
            EXPECT_LT(op.dest, 8 + p.chaseChains);
        }
    }
    EXPECT_GT(chase_seen, 50u);
}

TEST(Generator, SteadyStateBlocksCoverRegions)
{
    const SynthProfile &p = workloads::byName("web_search");
    TraceGenerator gen(p, 5, 0);
    auto blocks = gen.steadyStateBlocks();
    std::uint64_t expected =
        (p.codeBytes + p.hotBytes + p.warmBytes) / cacheBlockBytes;
    EXPECT_EQ(blocks.size(), expected);
}

class GeneratorPropertyTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GeneratorPropertyTest, MixApproximatesProfile)
{
    const SynthProfile &p = workloads::byName(GetParam());
    TraceGenerator gen(p, 99, 0);
    const int n = 120000;
    std::map<OpClass, unsigned> counts;
    for (int i = 0; i < n; ++i)
        ++counts[gen.next().cls];
    // The control-flow walk weights program regions unevenly, so allow a
    // generous tolerance around the configured static mix.
    EXPECT_NEAR(double(counts[OpClass::Load]) / n, p.loadFrac,
                0.4 * p.loadFrac + 0.02);
    EXPECT_NEAR(double(counts[OpClass::Store]) / n, p.storeFrac,
                0.4 * p.storeFrac + 0.02);
    EXPECT_NEAR(double(counts[OpClass::Branch]) / n, p.branchFrac,
                0.4 * p.branchFrac + 0.02);
}

TEST_P(GeneratorPropertyTest, AddressesWithinRegions)
{
    const SynthProfile &p = workloads::byName(GetParam());
    TraceGenerator gen(p, 7, 1);
    for (int i = 0; i < 30000; ++i) {
        const MicroOp op = gen.next();
        // PCs stay inside the code footprint.
        ASSERT_GE(op.pc, gen.codeBase());
        ASSERT_LT(op.pc, gen.codeBase() + p.codeBytes);
        if (op.isMem()) {
            bool in_hot = op.effAddr >= gen.hotBase() &&
                          op.effAddr < gen.hotBase() + p.hotBytes;
            bool in_warm = op.effAddr >= gen.warmBase() &&
                           op.effAddr < gen.warmBase() + p.warmBytes;
            bool in_cold = op.effAddr >= gen.coldBase() &&
                           op.effAddr < gen.coldBase() + p.coldBytes;
            ASSERT_TRUE(in_hot || in_warm || in_cold)
                << "stray address " << std::hex << op.effAddr;
        }
    }
}

TEST_P(GeneratorPropertyTest, RegisterDiscipline)
{
    const SynthProfile &p = workloads::byName(GetParam());
    TraceGenerator gen(p, 3, 0);
    for (int i = 0; i < 20000; ++i) {
        const MicroOp op = gen.next();
        if (op.dest != noReg) {
            ASSERT_GE(op.dest, 8u);
            ASSERT_LT(op.dest, numArchRegs);
        }
        if (op.src1 != noReg) {
            ASSERT_LT(op.src1, numArchRegs);
        }
        if (op.src2 != noReg) {
            ASSERT_LT(op.src2, numArchRegs);
        }
        if (op.cls == OpClass::Branch) {
            ASSERT_EQ(op.dest, noReg);
            if (op.taken) {
                ASSERT_GE(op.target, gen.codeBase());
                ASSERT_LT(op.target, gen.codeBase() + p.codeBytes + 4096);
            }
        }
        if (op.isChase) {
            ASSERT_EQ(static_cast<int>(op.cls),
                      static_cast<int>(OpClass::Load));
        }
    }
}

TEST_P(GeneratorPropertyTest, BranchOutcomesArePartlyPredictable)
{
    const SynthProfile &p = workloads::byName(GetParam());
    TraceGenerator gen(p, 21, 0);
    // A per-site last-direction predictor should beat a coin toss by a
    // wide margin on every profile (sites are strongly biased).
    std::map<Addr, bool> last_dir;
    unsigned repeats = 0, correct = 0;
    for (int i = 0; i < 120000; ++i) {
        const MicroOp op = gen.next();
        if (op.cls != OpClass::Branch)
            continue;
        auto it = last_dir.find(op.pc);
        if (it != last_dir.end()) {
            ++repeats;
            if (it->second == op.taken)
                ++correct;
        }
        last_dir[op.pc] = op.taken;
    }
    ASSERT_GT(repeats, 1000u);
    EXPECT_GT(double(correct) / repeats, 0.6) << "profile " << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, GeneratorPropertyTest,
    ::testing::ValuesIn([] {
        std::vector<std::string> names;
        for (const auto &p : workloads::all())
            names.push_back(p.name);
        return names;
    }()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace stretch

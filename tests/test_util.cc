/**
 * @file
 * Unit tests for the util substrate: deterministic RNG, Zipf sampling,
 * hierarchical seed derivation, the log-bucketed latency histogram, and
 * the thread pool.
 */

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/histogram.h"
#include "util/rng.h"
#include "util/seed_stream.h"
#include "util/thread_pool.h"
#include "util/types.h"

namespace stretch
{
namespace
{

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    unsigned same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0u);
}

TEST(Rng, StreamsDecorrelated)
{
    Rng a(7, 0), b(7, 1);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BelowInRange)
{
    Rng rng(3);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.between(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformMean)
{
    Rng rng(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(13);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, LognormalMean)
{
    Rng rng(17);
    double sigma = 0.5;
    double mean_target = 10.0;
    double mu = std::log(mean_target) - sigma * sigma / 2;
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.lognormal(mu, sigma);
    EXPECT_NEAR(sum / n, mean_target, 0.25);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Zipf, MostPopularItemDominates)
{
    Rng rng(23);
    ZipfSampler zipf(1000, 0.9);
    std::vector<unsigned> counts(1000, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[zipf.sample(rng)];
    // Rank 0 must be the clear leader and the tail must still be touched.
    EXPECT_GT(counts[0], counts[100]);
    EXPECT_GT(counts[0], 50000 / 100);
    unsigned tail_hits = 0;
    for (std::size_t i = 500; i < 1000; ++i)
        tail_hits += counts[i];
    EXPECT_GT(tail_hits, 0u);
}

TEST(Zipf, InRange)
{
    Rng rng(29);
    ZipfSampler zipf(64, 0.5);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(zipf.sample(rng), 64u);
}

TEST(Zipf, LargeItemCountUsesApproximateZeta)
{
    Rng rng(31);
    ZipfSampler zipf(1 << 20, 0.8);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(zipf.sample(rng), 1u << 20);
}

TEST(Histogram, CountMeanMinMax)
{
    Histogram h;
    h.record(1.0);
    h.record(2.0);
    h.record(3.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_NEAR(h.mean(), 2.0, 1e-9);
    EXPECT_NEAR(h.min(), 1.0, 1e-9);
    EXPECT_NEAR(h.max(), 3.0, 1e-9);
}

TEST(Histogram, PercentileAccuracy)
{
    Histogram h;
    std::vector<double> values;
    Rng rng(37);
    for (int i = 0; i < 100000; ++i) {
        double v = rng.lognormal(2.0, 0.8);
        values.push_back(v);
        h.record(v);
    }
    std::sort(values.begin(), values.end());
    for (double pct : {50.0, 90.0, 95.0, 99.0, 99.9}) {
        double exact = values[static_cast<std::size_t>(
            pct / 100.0 * (values.size() - 1))];
        double approx = h.percentile(pct);
        // Log-bucketed histogram: ~1% relative error budget.
        EXPECT_NEAR(approx / exact, 1.0, 0.02) << "pct " << pct;
    }
}

TEST(Histogram, PercentileBounds)
{
    Histogram h;
    h.record(5.0);
    h.record(50.0);
    EXPECT_NEAR(h.percentile(0.0), 5.0, 1e-9);
    EXPECT_NEAR(h.percentile(100.0), 50.0, 1e-9);
    EXPECT_LE(h.percentile(99.0), 50.0);
}

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(99.0), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, WeightedRecord)
{
    Histogram h;
    h.record(1.0, 99);
    h.record(100.0, 1);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_LT(h.percentile(50.0), 2.0);
    EXPECT_GT(h.percentile(99.5), 50.0);
}

TEST(Histogram, Merge)
{
    Histogram a, b;
    for (int i = 1; i <= 100; ++i)
        a.record(i);
    for (int i = 101; i <= 200; ++i)
        b.record(i);
    a.merge(b);
    EXPECT_EQ(a.count(), 200u);
    EXPECT_NEAR(a.max(), 200.0, 1e-9);
    EXPECT_NEAR(a.percentile(50.0) / 100.0, 1.0, 0.05);
}

TEST(Histogram, Reset)
{
    Histogram h;
    h.record(10.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0.0);
}

TEST(Histogram, NegativeClamped)
{
    Histogram h;
    h.record(-5.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_GE(h.percentile(50.0), 0.0);
}

TEST(Types, BlockAddr)
{
    EXPECT_EQ(blockAddr(0), 0u);
    EXPECT_EQ(blockAddr(63), 0u);
    EXPECT_EQ(blockAddr(64), 1u);
    EXPECT_EQ(blockAddr(130), 2u);
}

TEST(Types, NsToCycles)
{
    // 75 ns at 2.5 GHz = 187.5 -> rounds up to 188 (Table II memory).
    EXPECT_EQ(nsToCycles(75.0), 188u);
    EXPECT_EQ(nsToCycles(0.4), 1u);
    EXPECT_EQ(nsToCycles(0.0), 0u);
}

TEST(MixSeed, Distinct)
{
    EXPECT_NE(mixSeed(1, 2), mixSeed(2, 1));
    EXPECT_NE(mixSeed(1, 2), mixSeed(1, 3));
    EXPECT_EQ(mixSeed(5, 9), mixSeed(5, 9));
}

TEST(DeriveSeed, TwoArgFormIsMixSeedCompatible)
{
    // Every historical mixSeed(seed, i) call site must keep its stream.
    EXPECT_EQ(util::deriveSeed(42, 7), mixSeed(42, 7));
    EXPECT_EQ(util::deriveSeed(0, 0), mixSeed(0, 0));
}

TEST(DeriveSeed, RightFoldPrependsHierarchyLevels)
{
    // A new outer level (cluster seed -> node stream -> node index)
    // wraps the tail without disturbing streams derived from it.
    EXPECT_EQ(util::deriveSeed(1, 2, 3), mixSeed(1, mixSeed(2, 3)));
    EXPECT_EQ(util::deriveSeed(1, 2, 3, 4),
              mixSeed(1, util::deriveSeed(2, 3, 4)));
}

TEST(DeriveSeed, DistinctPathsDecorrelate)
{
    EXPECT_NE(util::deriveSeed(1, 2, 3), util::deriveSeed(1, 3, 2));
    EXPECT_NE(util::deriveSeed(1, 2, 3), util::deriveSeed(2, 2, 3));
    // Path length matters too: (a, b) and (a, b, 0) are different
    // streams.
    EXPECT_NE(util::deriveSeed(1, 2), util::deriveSeed(1, 2, 0));
    // Usable at compile time (node streams are constexpr tags).
    static_assert(util::deriveSeed(0x4e0d, 1, 2) ==
                      mixSeed(0x4e0d, mixSeed(1, 2)),
                  "deriveSeed must fold right");
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    std::vector<std::atomic<int>> touched(64);
    for (auto &t : touched)
        t = 0;
    ThreadPool::parallelFor(4, touched.size(),
                            [&](std::size_t i) { ++touched[i]; });
    for (auto &t : touched)
        EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, WaiterDrainsTasksSubmittedWhileWaiting)
{
    // Regression: submit() used to notify only the workers' cv, never
    // idleCv — so a caller already blocked in wait() slept through tasks
    // submitted after it started waiting. With a single worker pinned
    // inside task A, the nested submit of B can only be drained by the
    // waiting caller; without the fix this deadlocks.
    ThreadPool pool(1);
    std::atomic<bool> released{false};
    pool.submit([&] {
        // Give the caller time to enter wait() and block on idleCv.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        pool.submit([&] { released = true; });
        // Pin the sole worker until the caller has drained B.
        while (!released.load())
            std::this_thread::yield();
    });
    pool.wait();
    EXPECT_TRUE(released.load());
}

TEST(ThreadPool, WaitRethrowsFirstTaskError)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, SubmitAcceptsMoveOnlyCallables)
{
    // Regression: the queue used to hold std::function, whose
    // copyability requirement rejected unique_ptr-capturing lambdas at
    // compile time. MoveOnlyTask lifts that.
    ThreadPool pool(2);
    std::atomic<int> sum{0};
    auto payload = std::make_unique<int>(41);
    pool.submit([p = std::move(payload), &sum] { sum += *p + 1; });
    // A large capture exercises the heap-fallback path of MoveOnlyTask.
    std::array<std::uint64_t, 32> big{};
    big.fill(1);
    auto heapPayload = std::make_unique<int>(58);
    pool.submit([p = std::move(heapPayload), big, &sum] {
        sum += *p + static_cast<int>(big[7]) + 1;
    });
    pool.wait();
    EXPECT_EQ(sum.load(), 42 + 60);
}

TEST(ThreadPool, MoveOnlyTaskMoveTransfersOwnership)
{
    int hits = 0;
    auto p = std::make_unique<int>(7);
    MoveOnlyTask a([p = std::move(p), &hits] { hits += *p; });
    MoveOnlyTask b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 7);
    MoveOnlyTask c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    c();
    EXPECT_EQ(hits, 14);
}

} // namespace
} // namespace stretch

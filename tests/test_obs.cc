/**
 * @file
 * Observability-layer tests: the JSON writer, the scenario hash, the
 * metric registry, the engine tracer, and — the load-bearing property —
 * bit-identity of traced vs untraced dispatch, with registry counters
 * cross-checked against trace-derived event counts and the dispatcher's
 * own tallies on both synthetic runs and a catalog drill.
 */

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "queueing/event_engine.h"
#include "scenario/presets.h"
#include "scenario/scenario.h"
#include "sim/fleet.h"
#include "workload/service_class.h"

namespace stretch
{
namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---- JsonWriter -------------------------------------------------------

TEST(JsonWriter, NestingAndScalarTypesSerializeExactly)
{
    obs::JsonWriter w;
    w.beginObject();
    w.field("i", std::int64_t{-7});
    w.field("u", std::uint64_t{42});
    w.field("b", true);
    w.field("s", "hi");
    w.nullField("n");
    w.key("a");
    w.beginArray();
    w.value(std::int64_t{1});
    w.beginObject();
    w.field("x", 0.5);
    w.endObject();
    w.endArray();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"i\":-7,\"u\":42,\"b\":true,\"s\":\"hi\","
                       "\"n\":null,\"a\":[1,{\"x\":0.5}]}");
}

TEST(JsonWriter, StringsAreEscaped)
{
    EXPECT_EQ(obs::JsonWriter::quoted("a\"b\\c"), "\"a\\\"b\\\\c\"");
    EXPECT_EQ(obs::JsonWriter::quoted("\n\t"), "\"\\n\\t\"");
    EXPECT_EQ(obs::JsonWriter::quoted(std::string_view("\x01", 1)),
              "\"\\u0001\"");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    obs::JsonWriter w;
    w.beginArray();
    w.value(kInf);
    w.value(-kInf);
    w.value(std::nan(""));
    w.value(1.5);
    w.endArray();
    EXPECT_EQ(w.str(), "[null,null,null,1.5]");
}

TEST(JsonWriter, DoublesRoundTrip)
{
    // 0.1 has no short exact decimal; the writer must still emit a
    // string that parses back to the same bits.
    for (double v : {0.1, 1.0 / 3.0, 1e-300, 123456789.123456789}) {
        obs::JsonWriter w;
        w.beginArray();
        w.value(v);
        w.endArray();
        std::string body = w.str().substr(1, w.str().size() - 2);
        EXPECT_EQ(std::stod(body), v) << body;
    }
}

// ---- Scenario hash ----------------------------------------------------

TEST(RunReportHash, Fnv1aMatchesKnownVectors)
{
    EXPECT_EQ(obs::fnv1a(""), 14695981039346656037ull);
    EXPECT_EQ(obs::fnv1a("a"), 0xaf63dc4c8601ec8cull);
}

TEST(RunReportHash, SensitiveToLabelSeedAndConfig)
{
    obs::RunReport a;
    a.label = "day";
    a.seed = 42;
    a.addConfig("cores", std::uint64_t{4});
    obs::RunReport b = a;
    EXPECT_EQ(a.hash(), b.hash());
    b.seed = 43;
    EXPECT_NE(a.hash(), b.hash());
    b = a;
    b.addConfig("burstRatio", 3.0);
    EXPECT_NE(a.hash(), b.hash());
}

// ---- MetricRegistry ---------------------------------------------------

TEST(MetricRegistry, CountersGaugesAndTailsRoundTrip)
{
    obs::MetricRegistry reg;
    EXPECT_FALSE(reg.has("engine.completions"));
    EXPECT_EQ(reg.counterValue("engine.completions"), 0u);

    reg.counter("engine.completions") += 3;
    reg.gauge("dispatch.elapsed_ms") = 12.5;
    reg.tail("dispatch.latency_ms").record(2.0);

    EXPECT_TRUE(reg.has("engine.completions"));
    EXPECT_TRUE(reg.has("dispatch.elapsed_ms"));
    EXPECT_TRUE(reg.has("dispatch.latency_ms"));
    EXPECT_EQ(reg.counterValue("engine.completions"), 3u);
    EXPECT_EQ(reg.gaugeValue("dispatch.elapsed_ms"), 12.5);
    EXPECT_EQ(reg.tails().at("dispatch.latency_ms").count(), 1u);
}

TEST(MetricRegistry, HandlesStaySableAcrossLaterRegistrations)
{
    obs::MetricRegistry reg;
    std::uint64_t &c = reg.counter("a.first");
    double &g = reg.gauge("g.first");
    for (int i = 0; i < 200; ++i) {
        reg.counter("a.fill" + std::to_string(i));
        reg.gauge("g.fill" + std::to_string(i));
    }
    c = 7;
    g = 2.25;
    EXPECT_EQ(reg.counterValue("a.first"), 7u);
    EXPECT_EQ(reg.gaugeValue("g.first"), 2.25);
}

TEST(MetricRegistry, WriteJsonSnapshotsSortedSections)
{
    obs::MetricRegistry reg;
    reg.counter("b.two") = 2;
    reg.counter("a.one") = 1;
    reg.gauge("g.x") = 0.5;
    reg.tail("t.lat").record(1.0);

    obs::JsonWriter w;
    reg.writeJson(w);
    const std::string json = w.str();
    EXPECT_NE(json.find("\"counters\":{\"a.one\":1,\"b.two\":2}"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"g.x\":0.5"), std::string::npos);
    EXPECT_NE(json.find("\"t.lat\""), std::string::npos);
}

// ---- EngineTracer on synthetic events ---------------------------------

TEST(EngineTracer, RecordsAndCountsSyntheticEvents)
{
    obs::EngineTracer tr(2);
    tr.arrival(0.5, 0);
    tr.arrival(1.0, 1);
    tr.shed(1.25, 1);
    tr.modeBegin(0, 0.0, "baseline");
    tr.modeEnd(0, 2.0, "baseline");
    tr.quantum(1.0);
    queueing::Completion c;
    c.index = 0;
    c.server = 1;
    c.classId = 0;
    c.arrivalMs = 0.5;
    c.startMs = 0.6;
    c.finishMs = 1.4;
    tr.completion(c);
    tr.incident(1.5, "arrival-scale", 2.0);

    using Ph = obs::TraceEvent::Phase;
    EXPECT_EQ(tr.events().size(), 8u);
    EXPECT_EQ(tr.count(Ph::Instant, "arrival"), 2u);
    EXPECT_EQ(tr.count(Ph::Instant, "shed"), 1u);
    EXPECT_EQ(tr.count(Ph::Begin, "baseline"), 1u);
    EXPECT_EQ(tr.count(Ph::End, "baseline"), 1u);
    EXPECT_EQ(tr.count(Ph::Complete, "request"), 1u);
    EXPECT_EQ(tr.count(Ph::Instant, "quantum"), 1u);
    EXPECT_EQ(tr.count(Ph::Instant, "arrival-scale"), 1u);
    EXPECT_EQ(tr.count(Ph::Instant, "no-such"), 0u);
}

TEST(EngineTracer, WritesChromeTraceDocument)
{
    obs::EngineTracer tr(1);
    tr.arrival(1.0, 0);
    std::ostringstream os;
    tr.writeTo(os);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
    // ts is microseconds: 1.0 ms -> 1000.
    EXPECT_NE(doc.find("\"ts\":1000"), std::string::npos) << doc;
}

TEST(EngineTracer, ClusterTraceMergesProcessGroups)
{
    // Two node tracers with distinct pids merge into one document: all
    // process/track metadata first, then both nodes' events, each under
    // its own pid.
    obs::EngineTracer node0(1), node1(1);
    node0.setProcess(1, "node 0");
    node1.setProcess(2, "node 1");
    node0.arrival(1.0, 0);
    node1.arrival(2.0, 0);

    std::ostringstream os;
    obs::writeClusterTrace({&node0, &node1}, os);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"node 0\""), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"node 1\""), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"pid\":1"), std::string::npos);
    EXPECT_NE(doc.find("\"pid\":2"), std::string::npos);
    // Both nodes' arrivals survive the merge (ts in microseconds).
    EXPECT_NE(doc.find("\"ts\":1000"), std::string::npos);
    EXPECT_NE(doc.find("\"ts\":2000"), std::string::npos);
}

TEST(EngineTracer, WindowSelectsOverlappingEvents)
{
    obs::EngineTracer tr(1);
    tr.arrival(1.0, 0);
    tr.arrival(5.0, 0);
    tr.arrival(9.0, 0);
    tr.modeBegin(0, 0.0, "baseline"); // span 0..10 overlaps any window
    tr.modeEnd(0, 10.0, "baseline");

    obs::JsonWriter w;
    tr.writeWindow(w, 4.0, 6.0);
    const std::string json = w.str();
    // The 5.0 arrival and the enclosing mode span are in; 1.0/9.0 out.
    EXPECT_NE(json.find("\"ts\":5000"), std::string::npos) << json;
    EXPECT_EQ(json.find("\"ts\":1000,"), std::string::npos) << json;
    EXPECT_NE(json.find("baseline"), std::string::npos);
}

// ---- Traced vs untraced bit-identity ----------------------------------

/** A dispatch config exercising every traced subsystem: service
 *  classes, class-aware routing, the SlackDriven monitor ladder with
 *  throttling, incidents, and the completion timeline. */
sim::DispatchConfig
instrumentedBase(std::uint64_t seed, queueing::EventQueueKind kind)
{
    using Kind = sim::IncidentAction::Kind;
    sim::DispatchConfig cfg;
    cfg.rates.assign(4, sim::ModeRates{2.0, 1.7, 2.4, 2.6});
    cfg.requests = 5000;
    cfg.arrivalRatePerMs = 6.0;
    cfg.seed = seed;
    cfg.queueKind = kind;
    cfg.classes =
        workloads::ServiceClassRegistry::searchAnalyticsPair(6.0, 75.0);
    cfg.policy = sim::PlacementPolicy::ClassAware;
    cfg.control.kind = sim::ModePolicyKind::SlackDriven;
    cfg.control.quantumMs = 0.5;
    cfg.control.monitor.qosTarget = 4.0;
    cfg.control.honorThrottle = true;
    cfg.timelineBucketMs = 50.0;

    sim::IncidentAction surge;
    surge.kind = Kind::ArrivalScale;
    surge.atMs = 150.0;
    surge.value = 1.8;
    sim::IncidentAction calm;
    calm.kind = Kind::ArrivalScale;
    calm.atMs = 400.0;
    calm.value = 1.0;
    sim::IncidentAction fail;
    fail.kind = Kind::CoreFail;
    fail.atMs = 550.0;
    fail.core = 3;
    cfg.incidents = {surge, calm, fail};
    return cfg;
}

/** Exact equality of everything the dispatcher reports — the tracer
 *  and the registry must be pure observers. */
void
expectIdentical(const sim::DispatchOutcome &a, const sim::DispatchOutcome &b)
{
    EXPECT_EQ(a.placed, b.placed);
    EXPECT_EQ(a.busyMs, b.busyMs);
    EXPECT_EQ(a.elapsedMs, b.elapsedMs);
    EXPECT_EQ(a.throughputRps, b.throughputRps);
    EXPECT_EQ(a.totalShed, b.totalShed);
    EXPECT_EQ(a.latencyMs.count, b.latencyMs.count);
    EXPECT_EQ(a.latencyMs.mean, b.latencyMs.mean);
    EXPECT_EQ(a.latencyMs.p99, b.latencyMs.p99);
    EXPECT_EQ(a.latencyMs.max, b.latencyMs.max);
    ASSERT_EQ(a.modeStats.size(), b.modeStats.size());
    for (std::size_t c = 0; c < a.modeStats.size(); ++c) {
        for (std::size_t m = 0; m < sim::numStretchModes; ++m)
            EXPECT_EQ(a.modeStats[c].residencyMs[m],
                      b.modeStats[c].residencyMs[m]);
        EXPECT_EQ(a.modeStats[c].transitions, b.modeStats[c].transitions);
        EXPECT_EQ(a.modeStats[c].throttleMs, b.modeStats[c].throttleMs);
        EXPECT_EQ(a.modeStats[c].throttleEngagements,
                  b.modeStats[c].throttleEngagements);
    }
    ASSERT_EQ(a.timeline.size(), b.timeline.size());
    for (std::size_t i = 0; i < a.timeline.size(); ++i) {
        EXPECT_EQ(a.timeline[i].completions, b.timeline[i].completions);
        EXPECT_EQ(a.timeline[i].p99Ms, b.timeline[i].p99Ms);
    }
    ASSERT_EQ(a.perClass.size(), b.perClass.size());
    for (std::size_t k = 0; k < a.perClass.size(); ++k) {
        EXPECT_EQ(a.perClass[k].completed, b.perClass[k].completed);
        EXPECT_EQ(a.perClass[k].shed, b.perClass[k].shed);
        EXPECT_EQ(a.perClass[k].tailMs, b.perClass[k].tailMs);
        EXPECT_EQ(a.perClass[k].sloAttainment, b.perClass[k].sloAttainment);
    }
}

TEST(TracedDispatch, TracingAndMetricsAreBitIdenticalToBareRuns)
{
    for (queueing::EventQueueKind kind :
         {queueing::EventQueueKind::Calendar,
          queueing::EventQueueKind::Heap}) {
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
            sim::DispatchOutcome bare =
                sim::dispatchRequests(instrumentedBase(seed, kind));

            sim::DispatchConfig cfg = instrumentedBase(seed, kind);
            obs::EngineTracer tracer(cfg.rates.size());
            obs::MetricRegistry metrics;
            cfg.tracer = &tracer;
            cfg.metrics = &metrics;
            sim::DispatchOutcome traced = sim::dispatchRequests(cfg);

            expectIdentical(bare, traced);
            EXPECT_GT(tracer.events().size(), cfg.requests);
        }
    }
}

// ---- Registry / trace / outcome cross-check ---------------------------

TEST(TracedDispatch, CountersTraceAndOutcomeTalliesAgree)
{
    using Ph = obs::TraceEvent::Phase;
    sim::DispatchConfig cfg =
        instrumentedBase(11, queueing::EventQueueKind::Calendar);
    obs::EngineTracer tr(cfg.rates.size());
    obs::MetricRegistry reg;
    cfg.tracer = &tr;
    cfg.metrics = &reg;
    sim::DispatchOutcome out = sim::dispatchRequests(cfg);

    // Admission: every request produced exactly one arrival instant and
    // either a completion span or a shed instant.
    EXPECT_EQ(tr.count(Ph::Instant, "arrival"), cfg.requests);
    EXPECT_EQ(reg.counterValue("engine.arrivals"), cfg.requests);
    EXPECT_EQ(tr.count(Ph::Instant, "shed"), out.totalShed);
    EXPECT_EQ(reg.counterValue("engine.sheds"), out.totalShed);
    EXPECT_EQ(tr.count(Ph::Complete, "request"), out.latencyMs.count);
    EXPECT_EQ(reg.counterValue("engine.completions"), out.latencyMs.count);
    EXPECT_EQ(tr.count(Ph::Complete, "request") +
                  tr.count(Ph::Instant, "shed"),
              cfg.requests);

    // Control plane: quanta, mode spans, throttle spans.
    EXPECT_EQ(tr.count(Ph::Instant, "quantum"),
              reg.counterValue("engine.quantum_boundaries"));
    EXPECT_EQ(tr.count(Ph::Begin, "throttled"),
              out.totalThrottleEngagements());
    EXPECT_EQ(reg.counterValue("control.throttle_engagements"),
              out.totalThrottleEngagements());
    EXPECT_EQ(reg.counterValue("control.mode_transitions"),
              out.totalTransitions());
    // Every serving core opens one span at t=0; each transition opens
    // one more (a CoreFail only closes).
    std::size_t modeBegins = 0;
    for (std::size_t m = 0; m < sim::numStretchModes; ++m)
        modeBegins +=
            tr.count(Ph::Begin, toString(static_cast<StretchMode>(m)));
    EXPECT_EQ(modeBegins, cfg.rates.size() + out.totalTransitions());

    // Incidents: one instant per fired action, named after its kind.
    EXPECT_EQ(tr.count(Ph::Instant, "arrival-scale") +
                  tr.count(Ph::Instant, "core-fail"),
              cfg.incidents.size());
    EXPECT_EQ(reg.counterValue("incidents.fired"), cfg.incidents.size());
    EXPECT_EQ(reg.counterValue("incidents.arrival-scale"), 2u);
    EXPECT_EQ(reg.counterValue("incidents.core-fail"), 1u);

    // Class-aware routing: the four placement buckets partition the
    // admitted requests; admission sheds are the only sheds.
    const std::uint64_t routed = reg.counterValue("router.hot_pinned") +
                                 reg.counterValue("router.hot_overflow") +
                                 reg.counterValue("router.loose_little") +
                                 reg.counterValue("router.loose_big");
    EXPECT_EQ(routed, out.latencyMs.count);
    EXPECT_EQ(reg.counterValue("router.shed_admission"), out.totalShed);

    // Per-class counters restate the outcome rows; the dispatch tail
    // absorbed every completion.
    std::uint64_t classCompleted = 0;
    for (const sim::ClassOutcome &co : out.perClass) {
        EXPECT_EQ(reg.counterValue("class." + co.name + ".completions"),
                  co.completed);
        EXPECT_EQ(reg.counterValue("class." + co.name + ".sheds"), co.shed);
        classCompleted += co.completed;
    }
    EXPECT_EQ(classCompleted, out.latencyMs.count);
    EXPECT_EQ(reg.tails().at("dispatch.latency_ms").count(),
              out.latencyMs.count);
    EXPECT_EQ(reg.gaugeValue("dispatch.elapsed_ms"), out.elapsedMs);
}

// ---- Drill instrumentation --------------------------------------------

TEST(InstrumentedDrill, GuardrailDrillCrossChecksAndWritesArtifacts)
{
    namespace fs = std::filesystem;
    using Ph = obs::TraceEvent::Phase;
    const fs::path dir = fs::path(::testing::TempDir());
    const std::string trace = (dir / "guardrail.trace.json").string();
    const std::string report = (dir / "guardrail.report.json").string();

    scenario::DrillOutcome o = scenario::runDrill(
        scenario::drill("guardrail/flash-crowd"), [&](scenario::Scenario &s) {
            s.tracePath = trace;
            s.reportPath = report;
        });

    ASSERT_NE(o.trace, nullptr);
    ASSERT_NE(o.metrics, nullptr);
    const sim::DispatchOutcome &d = o.result.dispatch;

    // Registry == trace == outcome, on a real catalog drill.
    EXPECT_EQ(o.trace->count(Ph::Complete, "request"), d.latencyMs.count);
    EXPECT_EQ(o.metrics->counterValue("engine.completions"),
              d.latencyMs.count);
    EXPECT_EQ(o.trace->count(Ph::Instant, "shed"), d.totalShed);
    EXPECT_EQ(o.metrics->counterValue("engine.sheds"), d.totalShed);
    EXPECT_EQ(o.trace->count(Ph::Begin, "throttled"),
              d.totalThrottleEngagements());
    EXPECT_EQ(o.metrics->counterValue("control.mode_transitions"),
              d.totalTransitions());
    EXPECT_EQ(o.trace->count(Ph::Instant, "arrival"),
              o.metrics->counterValue("engine.arrivals"));

    // Both artifacts landed on disk with their envelopes.
    std::ifstream rf(report);
    ASSERT_TRUE(rf.good());
    std::stringstream rbody;
    rbody << rf.rdbuf();
    EXPECT_NE(rbody.str().find("\"kind\":\"run-report\""),
              std::string::npos);
    EXPECT_NE(rbody.str().find("\"assertions\":["), std::string::npos);
    std::ifstream tf(trace);
    ASSERT_TRUE(tf.good());
    std::stringstream tbody;
    tbody << tf.rdbuf();
    EXPECT_NE(tbody.str().find("\"traceEvents\""), std::string::npos);
}

// ---- Scenario-level reporting -----------------------------------------

scenario::Scenario
smallScenario()
{
    sim::RunConfig core;
    core.workload0 = "web_search";
    core.workload1 = "mcf";
    return scenario::ScenarioBuilder()
        .name("obs-small")
        .addCore(core)
        .addCore(core)
        .serviceClasses(
            workloads::ServiceClassRegistry::searchAnalyticsPair(6.0, 75.0))
        .requests(2000)
        .arrivalRate(3.0)
        .timeline(50.0)
        .seed(5)
        .expect();
}

TEST(ScenarioReporting, RunWritesArtifactsWithoutChangingResults)
{
    namespace fs = std::filesystem;
    const fs::path dir = fs::path(::testing::TempDir());
    const std::string trace = (dir / "small.trace.json").string();
    const std::string report = (dir / "small.report.json").string();

    sim::FleetResult bare = scenario::run(smallScenario());

    scenario::Scenario s = smallScenario();
    s.tracePath = trace;
    s.reportPath = report;
    sim::FleetResult instrumented = scenario::run(s);

    expectIdentical(bare.dispatch, instrumented.dispatch);
    EXPECT_TRUE(fs::exists(trace));
    EXPECT_TRUE(fs::exists(report));

    std::ifstream rf(report);
    std::stringstream body;
    body << rf.rdbuf();
    EXPECT_NE(body.str().find("\"label\":\"obs-small\""), std::string::npos);
    EXPECT_NE(body.str().find("\"metrics\":{"), std::string::npos);
    EXPECT_NE(body.str().find("\"hash\":\""), std::string::npos);
}

TEST(ScenarioReporting, RunInstrumentedReturnsLiveObjectsAndWritesNothing)
{
    namespace fs = std::filesystem;
    const fs::path dir = fs::path(::testing::TempDir());
    const std::string trace = (dir / "live.trace.json").string();

    scenario::Scenario s = smallScenario();
    s.tracePath = trace;
    s.reportPath = (dir / "live.report.json").string();
    scenario::InstrumentedRun r = scenario::runInstrumented(s);

    ASSERT_NE(r.trace, nullptr);
    ASSERT_NE(r.metrics, nullptr);
    EXPECT_GT(r.trace->events().size(), 0u);
    EXPECT_EQ(r.metrics->counterValue("engine.completions"),
              r.result.dispatch.latencyMs.count);
    EXPECT_FALSE(fs::exists(trace)); // serialization is the caller's call
}

// ---- Sweep artifact paths ---------------------------------------------

TEST(VariantArtifactPath, SanitizesLabelsIntoThePath)
{
    EXPECT_EQ(scenario::variantArtifactPath("runs/day.json",
                                            "policy=qos, load=90%"),
              "runs/day-policy-qos-load-90.json");
    EXPECT_EQ(scenario::variantArtifactPath("trace", "a=b"), "trace-a-b");
    EXPECT_EQ(scenario::variantArtifactPath("out.d/trace", "x=1"),
              "out.d/trace-x-1");
}

} // namespace
} // namespace stretch

/**
 * @file
 * OperatingPointCache tests: repeat measurements of identical
 * configurations are cache hits (the fig15-style bench speedup), key
 * sensitivity, and runFleet's use of the memo.
 */

#include <gtest/gtest.h>

#include "sim/fleet.h"
#include "sim/op_point_cache.h"

namespace stretch::sim
{
namespace
{

/** Small-but-real colocation config so cache tests stay fast. */
RunConfig
smallConfig()
{
    RunConfig cfg;
    cfg.workload0 = "web_search";
    cfg.workload1 = "zeusmp";
    cfg.samples = 2;
    cfg.warmupOps = 2000;
    cfg.measureOps = 5000;
    return cfg;
}

TEST(OperatingPointCache, SecondMeasurementIsAHit)
{
    OperatingPointCache &cache = OperatingPointCache::instance();
    cache.clear();

    RunConfig cfg = smallConfig();
    const RunResult &first = cache.measure(cfg);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.size(), 1u);

    const RunResult &second = cache.measure(cfg);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    // Same memoised entry, not merely an equal value.
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(first.totalCycles, run(cfg).totalCycles); // matches a real run
}

TEST(OperatingPointCache, KeySeparatesResultChangingFields)
{
    RunConfig a = smallConfig();
    RunConfig b = a;
    EXPECT_EQ(OperatingPointCache::key(a), OperatingPointCache::key(b));

    b.seed = a.seed + 1;
    EXPECT_NE(OperatingPointCache::key(a), OperatingPointCache::key(b));

    b = a;
    b.robEntries = 128;
    EXPECT_NE(OperatingPointCache::key(a), OperatingPointCache::key(b));

    b = a;
    b.warmupCycles = a.warmupCycles + 1;
    EXPECT_NE(OperatingPointCache::key(a), OperatingPointCache::key(b));

    // Sample-level parallelism is bit-identical by construction, so it
    // must share the entry.
    b = a;
    b.parallelism = 8;
    EXPECT_EQ(OperatingPointCache::key(a), OperatingPointCache::key(b));
}

TEST(OperatingPointCache, RunFleetSkipsRemeasuringIdenticalSlots)
{
    OperatingPointCache &cache = OperatingPointCache::instance();
    cache.clear();

    FleetConfig fleet = homogeneousFleet(2, smallConfig());
    fleet.requests = 500;
    fleet.modeControl.kind = ModePolicyKind::SlackDriven;
    fleet.modeControl.monitor.qosTarget = 1.0;

    FleetResult first = runFleet(fleet);
    std::uint64_t misses_after_first = cache.misses();
    // 2 cores x (3 modes + throttled point), all distinct seeds.
    EXPECT_EQ(misses_after_first, 8u);

    // The second identical fleet re-measures nothing — the satellite
    // acceptance: a repeat measurement of an identical slot is a hit.
    FleetResult second = runFleet(fleet);
    EXPECT_EQ(cache.misses(), misses_after_first);
    EXPECT_GE(cache.hits(), 8u);

    // Cached operating points are bit-identical to fresh ones.
    for (std::size_t c = 0; c < 2; ++c) {
        EXPECT_EQ(first.modeRates[c].baseline, second.modeRates[c].baseline);
        EXPECT_EQ(first.modeRates[c].qmode, second.modeRates[c].qmode);
        EXPECT_EQ(first.modeRates[c].throttledLs,
                  second.modeRates[c].throttledLs);
    }
    EXPECT_EQ(first.dispatch.latencyMs.p99, second.dispatch.latencyMs.p99);

    // Opting out forces fresh measurements.
    FleetConfig fresh = fleet;
    fresh.reuseOperatingPoints = false;
    std::uint64_t hits_before = cache.hits();
    FleetResult third = runFleet(fresh);
    EXPECT_EQ(cache.hits(), hits_before);
    EXPECT_EQ(cache.misses(), misses_after_first);
    EXPECT_EQ(third.dispatch.latencyMs.p99, first.dispatch.latencyMs.p99);
}

TEST(OperatingPointCache, ClearResetsEverything)
{
    OperatingPointCache &cache = OperatingPointCache::instance();
    cache.clear();
    cache.measure(smallConfig());
    EXPECT_GT(cache.size(), 0u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
}

} // namespace
} // namespace stretch::sim

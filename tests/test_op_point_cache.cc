/**
 * @file
 * OperatingPointCache tests: repeat measurements of identical
 * configurations are cache hits (the fig15-style bench speedup), key
 * sensitivity, and runFleet's use of the memo.
 */

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <string>

#include "sim/fleet.h"
#include "sim/op_point_cache.h"

namespace stretch::sim
{
namespace
{

/** Small-but-real colocation config so cache tests stay fast. */
RunConfig
smallConfig()
{
    RunConfig cfg;
    cfg.workload0 = "web_search";
    cfg.workload1 = "zeusmp";
    cfg.samples = 2;
    cfg.warmupOps = 2000;
    cfg.measureOps = 5000;
    return cfg;
}

TEST(OperatingPointCache, SecondMeasurementIsAHit)
{
    OperatingPointCache &cache = OperatingPointCache::instance();
    cache.clear();

    RunConfig cfg = smallConfig();
    const RunResult &first = cache.measure(cfg);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.size(), 1u);

    const RunResult &second = cache.measure(cfg);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    // Same memoised entry, not merely an equal value.
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(first.totalCycles, run(cfg).totalCycles); // matches a real run
}

TEST(OperatingPointCache, KeySeparatesResultChangingFields)
{
    RunConfig a = smallConfig();
    RunConfig b = a;
    EXPECT_EQ(OperatingPointCache::key(a), OperatingPointCache::key(b));

    b.seed = a.seed + 1;
    EXPECT_NE(OperatingPointCache::key(a), OperatingPointCache::key(b));

    b = a;
    b.robEntries = 128;
    EXPECT_NE(OperatingPointCache::key(a), OperatingPointCache::key(b));

    b = a;
    b.warmupCycles = a.warmupCycles + 1;
    EXPECT_NE(OperatingPointCache::key(a), OperatingPointCache::key(b));

    // Sample-level parallelism is bit-identical by construction, so it
    // must share the entry.
    b = a;
    b.parallelism = 8;
    EXPECT_EQ(OperatingPointCache::key(a), OperatingPointCache::key(b));
}

TEST(OperatingPointCache, RunFleetSkipsRemeasuringIdenticalSlots)
{
    OperatingPointCache &cache = OperatingPointCache::instance();
    cache.clear();

    FleetConfig fleet = homogeneousFleet(2, smallConfig());
    fleet.requests = 500;
    fleet.modeControl.kind = ModePolicyKind::SlackDriven;
    fleet.modeControl.monitor.qosTarget = 1.0;

    FleetResult first = runFleet(fleet);
    std::uint64_t misses_after_first = cache.misses();
    // 2 cores x (3 modes + throttled point), all distinct seeds.
    EXPECT_EQ(misses_after_first, 8u);

    // The second identical fleet re-measures nothing — the satellite
    // acceptance: a repeat measurement of an identical slot is a hit.
    FleetResult second = runFleet(fleet);
    EXPECT_EQ(cache.misses(), misses_after_first);
    EXPECT_GE(cache.hits(), 8u);

    // Cached operating points are bit-identical to fresh ones.
    for (std::size_t c = 0; c < 2; ++c) {
        EXPECT_EQ(first.modeRates[c].baseline, second.modeRates[c].baseline);
        EXPECT_EQ(first.modeRates[c].qmode, second.modeRates[c].qmode);
        EXPECT_EQ(first.modeRates[c].throttledLs,
                  second.modeRates[c].throttledLs);
    }
    EXPECT_EQ(first.dispatch.latencyMs.p99, second.dispatch.latencyMs.p99);

    // Opting out forces fresh measurements.
    FleetConfig fresh = fleet;
    fresh.reuseOperatingPoints = false;
    std::uint64_t hits_before = cache.hits();
    FleetResult third = runFleet(fresh);
    EXPECT_EQ(cache.hits(), hits_before);
    EXPECT_EQ(cache.misses(), misses_after_first);
    EXPECT_EQ(third.dispatch.latencyMs.p99, first.dispatch.latencyMs.p99);
}

TEST(OperatingPointCache, DiskRoundTripIsBitIdentical)
{
    OperatingPointCache &cache = OperatingPointCache::instance();
    cache.clear();

    RunConfig cfg = smallConfig();
    RunResult measured = cache.measure(cfg); // copy before clear()
    RunConfig other = smallConfig();
    other.seed = 7;
    cache.measure(other);

    std::string path = ::testing::TempDir() + "op_point_cache_rt.txt";
    ASSERT_TRUE(cache.saveTo(path));

    // Reload into an empty cache: both entries come back, and a repeat
    // measurement is a hit with a bit-identical result.
    cache.clear();
    EXPECT_EQ(cache.loadFrom(path), 2u);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(cache.contains(cfg));
    const RunResult &reloaded = cache.measure(cfg);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(reloaded.uipc[0], measured.uipc[0]); // bit-identical
    EXPECT_EQ(reloaded.uipc[1], measured.uipc[1]);
    EXPECT_EQ(reloaded.totalCycles, measured.totalCycles);
    EXPECT_EQ(reloaded.stats[0].committedOps, measured.stats[0].committedOps);
    EXPECT_EQ(reloaded.stats[1].mlpCycles, measured.stats[1].mlpCycles);
    EXPECT_EQ(reloaded.llcMissCount, measured.llcMissCount);

    // Existing in-process entries win over the file on a merge.
    EXPECT_EQ(cache.loadFrom(path), 0u);
    EXPECT_EQ(cache.size(), 2u);
    std::remove(path.c_str());
}

TEST(OperatingPointCache, CorruptOrStaleFileLoadsNothing)
{
    OperatingPointCache &cache = OperatingPointCache::instance();
    cache.clear();
    cache.measure(smallConfig());

    std::string good = ::testing::TempDir() + "op_point_cache_good.txt";
    ASSERT_TRUE(cache.saveTo(good));
    cache.clear();

    // Missing file: nothing loads, fresh measurement is the fallback.
    EXPECT_EQ(cache.loadFrom(good + ".does-not-exist"), 0u);

    // Stale format version: nothing loads.
    std::string stale = ::testing::TempDir() + "op_point_cache_stale.txt";
    {
        std::ifstream in(good);
        std::ofstream out(stale, std::ios::trunc);
        std::string line;
        std::getline(in, line);
        out << "stretch-oppoint-cache 99999\n";
        while (std::getline(in, line))
            out << line << '\n';
    }
    EXPECT_EQ(cache.loadFrom(stale), 0u);

    // Truncated body: the whole load is discarded, not half-admitted.
    std::string corrupt = ::testing::TempDir() + "op_point_cache_bad.txt";
    {
        std::ifstream in(good);
        std::ofstream out(corrupt, std::ios::trunc);
        std::string line;
        for (int i = 0; i < 3 && std::getline(in, line); ++i)
            out << line << '\n';
    }
    EXPECT_EQ(cache.loadFrom(corrupt), 0u);
    EXPECT_EQ(cache.size(), 0u);

    // The untouched file still loads fine afterwards.
    EXPECT_EQ(cache.loadFrom(good), 1u);
    std::remove(good.c_str());
    std::remove(stale.c_str());
    std::remove(corrupt.c_str());
}

TEST(OperatingPointCache, ClearResetsEverything)
{
    OperatingPointCache &cache = OperatingPointCache::instance();
    cache.clear();
    cache.measure(smallConfig());
    EXPECT_GT(cache.size(), 0u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
}

} // namespace
} // namespace stretch::sim

/**
 * @file
 * OperatingPointCache tests: repeat measurements of identical
 * configurations are cache hits (the fig15-style bench speedup), key
 * sensitivity, and runFleet's use of the memo.
 */

#include <atomic>
#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <string>
#include <thread>
#include <vector>

#include "sim/fleet.h"
#include "sim/op_point_cache.h"

namespace stretch::sim
{
namespace
{

/** Small-but-real colocation config so cache tests stay fast. */
RunConfig
smallConfig()
{
    RunConfig cfg;
    cfg.workload0 = "web_search";
    cfg.workload1 = "zeusmp";
    cfg.samples = 2;
    cfg.warmupOps = 2000;
    cfg.measureOps = 5000;
    return cfg;
}

TEST(OperatingPointCache, SecondMeasurementIsAHit)
{
    OperatingPointCache &cache = OperatingPointCache::instance();
    cache.clear();

    RunConfig cfg = smallConfig();
    const RunResult &first = cache.measure(cfg);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.size(), 1u);

    const RunResult &second = cache.measure(cfg);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    // Same memoised entry, not merely an equal value.
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(first.totalCycles, run(cfg).totalCycles); // matches a real run
}

TEST(OperatingPointCache, KeySeparatesResultChangingFields)
{
    RunConfig a = smallConfig();
    RunConfig b = a;
    EXPECT_EQ(OperatingPointCache::key(a), OperatingPointCache::key(b));

    b.seed = a.seed + 1;
    EXPECT_NE(OperatingPointCache::key(a), OperatingPointCache::key(b));

    b = a;
    b.robEntries = 128;
    EXPECT_NE(OperatingPointCache::key(a), OperatingPointCache::key(b));

    b = a;
    b.warmupCycles = a.warmupCycles + 1;
    EXPECT_NE(OperatingPointCache::key(a), OperatingPointCache::key(b));

    // Sample-level parallelism is bit-identical by construction, so it
    // must share the entry.
    b = a;
    b.parallelism = 8;
    EXPECT_EQ(OperatingPointCache::key(a), OperatingPointCache::key(b));
}

TEST(OperatingPointCache, RunFleetSkipsRemeasuringIdenticalSlots)
{
    OperatingPointCache &cache = OperatingPointCache::instance();
    cache.clear();

    FleetConfig fleet = homogeneousFleet(2, smallConfig());
    fleet.requests = 500;
    fleet.modeControl.kind = ModePolicyKind::SlackDriven;
    fleet.modeControl.monitor.qosTarget = 1.0;

    FleetResult first = runFleet(fleet);
    std::uint64_t misses_after_first = cache.misses();
    // 2 cores x (3 modes + throttled point), all distinct seeds.
    EXPECT_EQ(misses_after_first, 8u);

    // The second identical fleet re-measures nothing — the satellite
    // acceptance: a repeat measurement of an identical slot is a hit.
    FleetResult second = runFleet(fleet);
    EXPECT_EQ(cache.misses(), misses_after_first);
    EXPECT_GE(cache.hits(), 8u);

    // Cached operating points are bit-identical to fresh ones.
    for (std::size_t c = 0; c < 2; ++c) {
        EXPECT_EQ(first.modeRates[c].baseline, second.modeRates[c].baseline);
        EXPECT_EQ(first.modeRates[c].qmode, second.modeRates[c].qmode);
        EXPECT_EQ(first.modeRates[c].throttledLs,
                  second.modeRates[c].throttledLs);
    }
    EXPECT_EQ(first.dispatch.latencyMs.p99, second.dispatch.latencyMs.p99);

    // Opting out forces fresh measurements.
    FleetConfig fresh = fleet;
    fresh.reuseOperatingPoints = false;
    std::uint64_t hits_before = cache.hits();
    FleetResult third = runFleet(fresh);
    EXPECT_EQ(cache.hits(), hits_before);
    EXPECT_EQ(cache.misses(), misses_after_first);
    EXPECT_EQ(third.dispatch.latencyMs.p99, first.dispatch.latencyMs.p99);
}

TEST(OperatingPointCache, DiskRoundTripIsBitIdentical)
{
    OperatingPointCache &cache = OperatingPointCache::instance();
    cache.clear();

    RunConfig cfg = smallConfig();
    RunResult measured = cache.measure(cfg); // copy before clear()
    RunConfig other = smallConfig();
    other.seed = 7;
    cache.measure(other);

    std::string path = ::testing::TempDir() + "op_point_cache_rt.txt";
    ASSERT_TRUE(cache.saveTo(path));

    // Reload into an empty cache: both entries come back, and a repeat
    // measurement is a hit with a bit-identical result.
    cache.clear();
    CacheLoadOutcome loaded = cache.loadFrom(path);
    EXPECT_EQ(loaded.status, CacheLoadOutcome::Status::Loaded);
    EXPECT_EQ(loaded.added, 2u);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(cache.contains(cfg));
    const RunResult &reloaded = cache.measure(cfg);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(reloaded.uipc[0], measured.uipc[0]); // bit-identical
    EXPECT_EQ(reloaded.uipc[1], measured.uipc[1]);
    EXPECT_EQ(reloaded.totalCycles, measured.totalCycles);
    EXPECT_EQ(reloaded.stats[0].committedOps, measured.stats[0].committedOps);
    EXPECT_EQ(reloaded.stats[1].mlpCycles, measured.stats[1].mlpCycles);
    EXPECT_EQ(reloaded.llcMissCount, measured.llcMissCount);

    // Existing in-process entries win over the file on a merge: the
    // load succeeds but adds nothing.
    CacheLoadOutcome merged = cache.loadFrom(path);
    EXPECT_EQ(merged.status, CacheLoadOutcome::Status::Loaded);
    EXPECT_EQ(merged.added, 0u);
    EXPECT_EQ(cache.size(), 2u);
    std::remove(path.c_str());
}

TEST(OperatingPointCache, CorruptOrStaleFileLoadsNothing)
{
    OperatingPointCache &cache = OperatingPointCache::instance();
    cache.clear();
    cache.measure(smallConfig());

    std::string good = ::testing::TempDir() + "op_point_cache_good.txt";
    ASSERT_TRUE(cache.saveTo(good));
    cache.clear();

    // Missing file: nothing loads, fresh measurement is the fallback —
    // and the outcome distinguishes "no file" from a rejected file.
    CacheLoadOutcome absent = cache.loadFrom(good + ".does-not-exist");
    EXPECT_EQ(absent.status, CacheLoadOutcome::Status::FileAbsent);
    EXPECT_EQ(absent.added, 0u);

    // Stale format version: nothing loads.
    std::string stale = ::testing::TempDir() + "op_point_cache_stale.txt";
    {
        std::ifstream in(good);
        std::ofstream out(stale, std::ios::trunc);
        std::string line;
        std::getline(in, line);
        out << "stretch-oppoint-cache 99999\n";
        while (std::getline(in, line))
            out << line << '\n';
    }
    CacheLoadOutcome staleOut = cache.loadFrom(stale);
    EXPECT_EQ(staleOut.status, CacheLoadOutcome::Status::BadFormat);
    EXPECT_EQ(staleOut.added, 0u);

    // Truncated body: the whole load is discarded, not half-admitted.
    std::string corrupt = ::testing::TempDir() + "op_point_cache_bad.txt";
    {
        std::ifstream in(good);
        std::ofstream out(corrupt, std::ios::trunc);
        std::string line;
        for (int i = 0; i < 3 && std::getline(in, line); ++i)
            out << line << '\n';
    }
    CacheLoadOutcome corruptOut = cache.loadFrom(corrupt);
    EXPECT_EQ(corruptOut.status, CacheLoadOutcome::Status::BadFormat);
    EXPECT_EQ(corruptOut.added, 0u);
    EXPECT_EQ(cache.size(), 0u);

    // The untouched file still loads fine afterwards.
    CacheLoadOutcome goodOut = cache.loadFrom(good);
    EXPECT_EQ(goodOut.status, CacheLoadOutcome::Status::Loaded);
    EXPECT_EQ(goodOut.added, 1u);
    std::remove(good.c_str());
    std::remove(stale.c_str());
    std::remove(corrupt.c_str());
}

TEST(OperatingPointCache, ConcurrentMissesOfOneKeySimulateOnce)
{
    OperatingPointCache &cache = OperatingPointCache::instance();
    cache.clear();

    // All threads miss the same key at once. Single-flight: exactly one
    // simulates (the miss), the rest block on its result (hits) — and
    // hits + misses == calls, the exactness the satellite demands.
    const unsigned callers = 8;
    RunConfig cfg = smallConfig();
    std::atomic<unsigned> started{0};
    std::vector<const RunResult *> results(callers, nullptr);
    std::vector<std::thread> threads;
    threads.reserve(callers);
    for (unsigned i = 0; i < callers; ++i) {
        threads.emplace_back([&, i] {
            // Rendezvous so the misses really race.
            ++started;
            while (started.load() < callers)
                std::this_thread::yield();
            results[i] = &cache.measure(cfg);
        });
    }
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), callers - 1);
    EXPECT_EQ(cache.hits() + cache.misses(), callers);
    EXPECT_EQ(cache.size(), 1u);
    // Everyone got the same memoised entry, not merely equal values.
    for (unsigned i = 1; i < callers; ++i)
        EXPECT_EQ(results[0], results[i]);

    // Distinct keys do not serialise behind one another: both miss.
    cache.clear();
    RunConfig other = smallConfig();
    other.seed = cfg.seed + 1;
    std::thread a([&] { cache.measure(cfg); });
    std::thread b([&] { cache.measure(other); });
    a.join();
    b.join();
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(OperatingPointCache, ConcurrentMeasureAndSaveToKeepTheCacheCoherent)
{
    OperatingPointCache &cache = OperatingPointCache::instance();
    cache.clear();

    // Hammer: workers race repeat measurements of a small key pool
    // (every key hit by every worker, so misses contend with hits)
    // while a writer continuously snapshots the cache to disk. The
    // cache must stay exact — hits + misses == calls — and every
    // snapshot taken mid-churn must be a loadable, complete file.
    const unsigned workers = 4;
    const unsigned rounds = 8;
    const unsigned keys = 6;
    std::vector<RunConfig> pool;
    for (unsigned k = 0; k < keys; ++k) {
        RunConfig cfg = smallConfig();
        cfg.seed = 1000 + k;
        pool.push_back(cfg);
    }

    std::string path = ::testing::TempDir() + "op_point_cache_hammer.txt";
    std::atomic<unsigned> started{0};
    std::atomic<bool> done{false};
    std::atomic<unsigned> saves{0};
    std::thread writer([&] {
        while (started.load() < workers)
            std::this_thread::yield();
        while (!done.load()) {
            ASSERT_TRUE(cache.saveTo(path));
            ++saves;
        }
        ASSERT_TRUE(cache.saveTo(path)); // one full-cache snapshot
        ++saves;
    });

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
            ++started;
            while (started.load() < workers)
                std::this_thread::yield();
            for (unsigned r = 0; r < rounds; ++r) {
                // Stagger the walk so threads collide on different keys.
                for (unsigned k = 0; k < keys; ++k)
                    cache.measure(pool[(w + r + k) % keys]);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    done.store(true);
    writer.join();

    // Exactness under contention: every call was a hit or a miss, every
    // distinct key simulated exactly once.
    EXPECT_EQ(cache.misses(), keys);
    EXPECT_EQ(cache.hits() + cache.misses(),
              static_cast<std::uint64_t>(workers) * rounds * keys);
    EXPECT_EQ(cache.size(), keys);
    EXPECT_GE(saves.load(), 1u);

    // The final snapshot round-trips the whole pool bit-identically.
    std::vector<RunResult> measured;
    for (const RunConfig &cfg : pool)
        measured.push_back(cache.measure(cfg));
    cache.clear();
    CacheLoadOutcome loaded = cache.loadFrom(path);
    EXPECT_EQ(loaded.status, CacheLoadOutcome::Status::Loaded);
    EXPECT_EQ(loaded.added, keys);
    for (unsigned k = 0; k < keys; ++k) {
        const RunResult &reloaded = cache.measure(pool[k]);
        EXPECT_EQ(reloaded.totalCycles, measured[k].totalCycles);
        EXPECT_EQ(reloaded.uipc[0], measured[k].uipc[0]);
        EXPECT_EQ(reloaded.uipc[1], measured[k].uipc[1]);
    }
    EXPECT_EQ(cache.misses(), 0u);
    std::remove(path.c_str());
}

TEST(OperatingPointCache, ClearResetsEverything)
{
    OperatingPointCache &cache = OperatingPointCache::instance();
    cache.clear();
    cache.measure(smallConfig());
    EXPECT_GT(cache.size(), 0u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
}

} // namespace
} // namespace stretch::sim

/**
 * @file
 * Tests for the sim runner: sampling determinism, configuration plumbing
 * (ROB kinds, sharing flags, fetch policies), and derived statistics.
 */

#include <gtest/gtest.h>

#include "sim/runner.h"
#include "workload/profiles.h"

namespace stretch::sim
{
namespace
{

RunConfig
fastConfig()
{
    RunConfig cfg;
    cfg.samples = 1;
    cfg.warmupOps = 2000;
    cfg.warmupCycles = 10000;
    cfg.measureOps = 6000;
    return cfg;
}

TEST(Runner, Deterministic)
{
    RunConfig cfg = fastConfig();
    cfg.workload0 = "web_search";
    cfg.workload1 = "zeusmp";
    RunResult a = run(cfg);
    RunResult b = run(cfg);
    EXPECT_EQ(a.uipc[0], b.uipc[0]);
    EXPECT_EQ(a.uipc[1], b.uipc[1]);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
}

TEST(Runner, SeedChangesResults)
{
    RunConfig cfg = fastConfig();
    cfg.workload0 = "web_search";
    RunConfig other = cfg;
    other.seed = 4711;
    EXPECT_NE(run(cfg).uipc[0], run(other).uipc[0]);
}

TEST(Runner, IsolatedLeavesThreadOneIdle)
{
    RunConfig cfg = fastConfig();
    RunResult r = runIsolated("gamess", cfg);
    EXPECT_GT(r.uipc[0], 0.3);
    EXPECT_EQ(r.uipc[1], 0.0);
    EXPECT_EQ(r.stats[1].committedOps, 0u);
}

TEST(Runner, RobOverrideReducesThroughputForStreamApps)
{
    RunConfig cfg = fastConfig();
    double full = runIsolated("zeusmp", cfg).uipc[0];
    double small = runIsolatedWithRob("zeusmp", 32, cfg).uipc[0];
    EXPECT_LT(small, full * 0.85);
}

TEST(Runner, AsymmetricKindShiftsThroughput)
{
    RunConfig cfg = fastConfig();
    cfg.workload0 = "web_search";
    cfg.workload1 = "zeusmp";
    cfg.rob.kind = RobConfigKind::EqualPartition;
    RunResult equal = run(cfg);
    cfg.rob.kind = RobConfigKind::Asymmetric;
    cfg.rob.limit0 = 32;
    cfg.rob.limit1 = 160;
    RunResult skew = run(cfg);
    EXPECT_GT(skew.uipc[1], equal.uipc[1]);
}

TEST(Runner, PrivateCachesHelpBothThreads)
{
    RunConfig cfg = fastConfig();
    cfg.workload0 = "data_serving";
    cfg.workload1 = "lbm"; // the L1-D bully
    RunResult shared = run(cfg);
    cfg.shareL1d = false;
    cfg.shareL1i = false;
    cfg.shareBp = false;
    RunResult priv = run(cfg);
    EXPECT_GE(priv.uipc[0], shared.uipc[0] * 0.98);
    EXPECT_GE(priv.uipc[1] + priv.uipc[0],
              shared.uipc[1] + shared.uipc[0]);
}

TEST(Runner, ThrottlePolicyPlumbs)
{
    RunConfig cfg = fastConfig();
    cfg.workload0 = "web_search";
    cfg.workload1 = "gamess";
    cfg.rob.kind = RobConfigKind::DynamicShared;
    cfg.fetchPolicy = FetchPolicy::Throttle;
    cfg.throttleRatio = 16;
    cfg.throttledThread = 0;
    RunResult r = run(cfg);
    RunConfig base = fastConfig();
    base.workload0 = "web_search";
    base.workload1 = "gamess";
    RunResult b = run(base);
    EXPECT_LT(r.uipc[0], b.uipc[0] * 0.8);
}

TEST(Runner, MlpAtLeastMonotone)
{
    RunConfig cfg = fastConfig();
    RunResult r = runIsolated("zeusmp", cfg);
    double prev = 1.1;
    for (unsigned n = 0; n <= 8; ++n) {
        double v = r.mlpAtLeast(0, n);
        EXPECT_LE(v, prev + 1e-12);
        prev = v;
    }
    EXPECT_NEAR(r.mlpAtLeast(0, 0), 1.0, 1e-12);
}

TEST(Runner, DerivedMpkis)
{
    RunConfig cfg = fastConfig();
    RunResult r = runIsolated("gcc", cfg);
    EXPECT_GT(r.branchMpki(0), 1.0);
    EXPECT_LT(r.branchMpki(0), 100.0);
    EXPECT_GT(r.l1dMpki(0), 1.0);
}

TEST(Runner, QuickFactorValidation)
{
    EXPECT_EQ(quickFactor(), 1.0);
    setQuickFactor(0.5);
    EXPECT_EQ(quickFactor(), 0.5);
    setQuickFactor(1.0);
}

TEST(RunnerDeathTest, MissingWorkloadIsFatal)
{
    RunConfig cfg = fastConfig();
    EXPECT_DEATH(run(cfg), "thread 0 needs a workload");
}

TEST(RunnerDeathTest, UnknownProfileIsFatal)
{
    RunConfig cfg = fastConfig();
    cfg.workload0 = "not_a_workload";
    EXPECT_DEATH(run(cfg), "unknown workload profile");
}

} // namespace
} // namespace stretch::sim

/**
 * @file
 * Unit tests for the SMT core model: pipeline throughput and latency
 * behaviour, partition enforcement, flush/replay, fetch policies, and
 * SMT interaction, using hand-built micro-op streams.
 */

#include <memory>

#include <gtest/gtest.h>

#include "core/smt_core.h"
#include "workload/generator.h"
#include "workload/profiles.h"

namespace stretch
{
namespace
{

/** A minimal machine wrapper for core tests. */
struct Machine
{
    explicit Machine(CoreParams params = {},
                     HierarchyConfig hcfg = fullMachineHierarchy())
        : mem(hcfg), bp(), core(params, mem, bp)
    {
    }

    static HierarchyConfig
    fullMachineHierarchy()
    {
        HierarchyConfig cfg;
        cfg.llcWayPartition = {8, 8};
        cfg.mshrQuota = {5, 5};
        return cfg;
    }

    MemoryHierarchy mem;
    BranchUnit bp;
    SmtCore core;
};

/** Profile emitting pure independent ALU ops (no memory, no branches). */
SynthProfile
aluOnlyProfile(unsigned dep_distance = 32)
{
    SynthProfile p;
    p.name = "alu_only";
    p.loadFrac = 0.0;
    p.storeFrac = 0.0;
    p.branchFrac = 0.0;
    p.fpFrac = 0.0;
    p.mulFrac = 0.0;
    p.depDistance = dep_distance;
    p.longChainFrac = 0.0;
    p.codeBytes = 4096;
    return p;
}

/** Profile that is one long serial dependence chain. */
SynthProfile
serialChainProfile()
{
    SynthProfile p = aluOnlyProfile(1);
    p.name = "serial_chain";
    p.longChainFrac = 1.0;
    return p;
}

/** Pointer-chase-only loads to memory (single chain). */
SynthProfile
chaseProfile()
{
    SynthProfile p;
    p.name = "pure_chase";
    p.loadFrac = 0.10;
    p.storeFrac = 0.0;
    p.branchFrac = 0.0;
    p.hotFrac = 0.0;
    p.warmFrac = 0.0;
    p.chaseFrac = 1.0;
    p.chaseChains = 1;
    p.coldBytes = 256ull << 20;
    p.depDistance = 32;
    p.codeBytes = 4096;
    return p;
}

TEST(Core, IndependentAluApproachesIntAluWidth)
{
    Machine m;
    TraceGenerator gen(aluOnlyProfile(), 1, 0);
    m.core.attachThread(0, &gen);
    m.core.configureRob(ShareMode::Partitioned, 192, 192);
    m.core.runUntilCommitted(0, 4000); // warm the I-side
    m.core.clearStats();
    m.core.runUntilCommitted(0, 20000);
    // Four integer ALUs bound throughput; expect to get close.
    EXPECT_GT(m.core.uipc(0), 3.2);
    EXPECT_LE(m.core.uipc(0), 4.05);
}

TEST(Core, SerialChainBoundByLatency)
{
    Machine m;
    TraceGenerator gen(serialChainProfile(), 1, 0);
    m.core.attachThread(0, &gen);
    m.core.configureRob(ShareMode::Partitioned, 192, 192);
    m.core.runUntilCommitted(0, 3000); // warm the I-side
    m.core.clearStats();
    m.core.runUntilCommitted(0, 5000);
    // Every op depends on the previous one: IPC ~= 1 (1-cycle ALU).
    EXPECT_GT(m.core.uipc(0), 0.85);
    EXPECT_LT(m.core.uipc(0), 1.15);
}

TEST(Core, ChaseLoadsSerialiseAtMemoryLatency)
{
    Machine m;
    TraceGenerator gen(chaseProfile(), 1, 0);
    m.core.attachThread(0, &gen);
    m.core.configureRob(ShareMode::Partitioned, 192, 192);
    m.core.runUntilCommitted(0, 4000);
    // One chase load every 10 ops, serialised at ~216+ cycles per miss:
    // IPC is bounded by 10/216 ~ 0.046, with slack for L1/LLC reuse hits.
    EXPECT_LT(m.core.uipc(0), 0.12);
    // MLP must be ~1: almost never 2+ outstanding.
    const ThreadStats &st = m.core.stats(0);
    std::uint64_t ge2 = 0, total = 0;
    for (std::size_t i = 0; i < st.mlpCycles.size(); ++i) {
        total += st.mlpCycles[i];
        if (i >= 2)
            ge2 += st.mlpCycles[i];
    }
    EXPECT_LT(double(ge2) / double(total), 0.02);
}

TEST(Core, RobLimitCapsOccupancy)
{
    Machine m;
    TraceGenerator gen(chaseProfile(), 1, 0);
    m.core.attachThread(0, &gen);
    m.core.configureRob(ShareMode::Partitioned, 48, 144);
    for (int i = 0; i < 5000; ++i) {
        m.core.cycle();
        ASSERT_LE(m.core.robOccupancy(0), 48u);
    }
    // The window actually fills up to its limit behind the misses.
    EXPECT_EQ(m.core.rob().limit(0), 48u);
    const ThreadStats &st = m.core.stats(0);
    EXPECT_GT(st.robOccupancySum / m.core.windowCycles(), 30u);
}

TEST(Core, LsqLimitStallsDispatch)
{
    CoreParams params;
    Machine m(params);
    SynthProfile p = chaseProfile();
    p.loadFrac = 0.6; // memory-heavy: LSQ is the binding constraint
    p.chaseFrac = 0.0;
    p.hotFrac = 1.0;
    p.hotBytes = 4096;
    TraceGenerator gen(p, 1, 0);
    m.core.attachThread(0, &gen);
    m.core.configureRob(ShareMode::Partitioned, 192, 192);
    m.core.configureLsq(ShareMode::Partitioned, 8, 56);
    m.core.runUntilCommitted(0, 4000);
    EXPECT_GT(m.core.stats(0).dispatchStallLsq, 100u);
}

TEST(Core, BiggerRobHelpsIndependentMisses)
{
    SynthProfile p;
    p.name = "mlp_stream";
    p.loadFrac = 0.25;
    p.hotFrac = 0.9;
    p.warmFrac = 0.0;
    p.chaseFrac = 0.0;
    p.streamFrac = 0.0;
    p.branchFrac = 0.0;
    p.storeFrac = 0.0;
    p.coldBytes = 512ull << 20;
    p.depDistance = 32;
    p.codeBytes = 4096;

    auto uipcWith = [&](unsigned rob) {
        Machine m;
        TraceGenerator gen(p, 1, 0);
        m.core.attachThread(0, &gen);
        m.core.configureRob(ShareMode::Partitioned, rob, rob);
        m.core.configureLsq(ShareMode::Partitioned, 64, 64);
        m.core.runUntilCommitted(0, 8000);
        return m.core.uipc(0);
    };
    double small = uipcWith(48);
    double large = uipcWith(192);
    EXPECT_GT(large, small * 1.2);
}

TEST(Core, BranchMispredictsCostCycles)
{
    SynthProfile easy = aluOnlyProfile();
    easy.branchFrac = 0.2;
    easy.hardBranchFrac = 0.0;
    easy.loopPeriod = 1000000; // essentially perfectly biased
    easy.jumpFarFrac = 0.0;
    easy.callFrac = 0.0;
    SynthProfile hard = easy;
    hard.hardBranchFrac = 1.0; // every branch is a coin toss

    auto uipcWith = [&](const SynthProfile &p) {
        Machine m;
        TraceGenerator gen(p, 3, 0);
        m.core.attachThread(0, &gen);
        m.core.configureRob(ShareMode::Partitioned, 192, 192);
        m.core.runUntilCommitted(0, 10000);
        return m.core.uipc(0);
    };
    double predictable = uipcWith(easy);
    double unpredictable = uipcWith(hard);
    EXPECT_GT(predictable, unpredictable * 2.0);
}

TEST(Core, MispredictStatsCounted)
{
    SynthProfile p = aluOnlyProfile();
    p.branchFrac = 0.2;
    p.hardBranchFrac = 1.0;
    Machine m;
    TraceGenerator gen(p, 3, 0);
    m.core.attachThread(0, &gen);
    m.core.runUntilCommitted(0, 5000);
    const ThreadStats &st = m.core.stats(0);
    EXPECT_GT(st.branches, 800u);
    // Coin-toss branches mispredict roughly half the time.
    double rate = double(st.branchMispredicts) / double(st.branches);
    EXPECT_GT(rate, 0.3);
    EXPECT_LT(rate, 0.7);
    EXPECT_GT(st.fetchStallBranchResolve, 1000u);
}

TEST(Core, FlushReplaysWithoutLosingInstructions)
{
    Machine m;
    TraceGenerator gen(aluOnlyProfile(), 5, 0);
    m.core.attachThread(0, &gen);
    m.core.configureRob(ShareMode::Partitioned, 192, 192);
    m.core.runUntilCommitted(0, 3000); // past the cold I-side misses
    m.core.run(50);                    // leave work in flight
    std::uint64_t committed_before = m.core.stats(0).committedOps;
    m.core.flushAllThreads();
    EXPECT_EQ(m.core.robOccupancy(0), 0u);
    m.core.run(400);
    // Execution resumes and continues committing after the flush penalty.
    EXPECT_GT(m.core.stats(0).committedOps, committed_before + 500);
    EXPECT_GT(m.core.stats(0).fetchStallFlush, 0u);
}

TEST(Core, FlushPreservesDeterministicCommitCount)
{
    // A run with a mid-point flush must commit the same instruction
    // stream (replayed), just later: after enough cycles the committed
    // count difference equals the flush bubble only.
    auto committedAfter = [](bool flush) {
        Machine m;
        TraceGenerator gen(aluOnlyProfile(), 5, 0);
        m.core.attachThread(0, &gen);
        m.core.configureRob(ShareMode::Partitioned, 192, 192);
        m.core.run(300);
        if (flush)
            m.core.flushAllThreads();
        m.core.run(3000);
        return m.core.stats(0).committedOps;
    };
    std::uint64_t without = committedAfter(false);
    std::uint64_t with = committedAfter(true);
    EXPECT_LT(without - with, 600u); // bounded bubble, no divergence
}

TEST(Core, SmtIdenticalThreadsShareFairly)
{
    Machine m;
    TraceGenerator g0(aluOnlyProfile(), 7, 0);
    TraceGenerator g1(aluOnlyProfile(), 7, 1);
    m.core.attachThread(0, &g0);
    m.core.attachThread(1, &g1);
    m.core.runUntilTotalCommitted(8000); // warm the I-side
    m.core.clearStats();
    m.core.runUntilTotalCommitted(40000);
    double u0 = m.core.uipc(0), u1 = m.core.uipc(1);
    EXPECT_NEAR(u0 / u1, 1.0, 0.1);
    // Combined throughput still bounded by the 4 integer ALUs.
    EXPECT_LE(u0 + u1, 4.1);
    EXPECT_GT(u0 + u1, 3.0);
}

TEST(Core, DynamicSharingJointCap)
{
    Machine m;
    TraceGenerator g0(chaseProfile(), 1, 0);
    TraceGenerator g1(chaseProfile(), 2, 1);
    m.core.attachThread(0, &g0);
    m.core.attachThread(1, &g1);
    m.core.configureRob(ShareMode::Dynamic, 192, 192);
    m.core.configureLsq(ShareMode::Dynamic, 64, 64);
    for (int i = 0; i < 4000; ++i) {
        m.core.cycle();
        ASSERT_LE(m.core.robOccupancy(0) + m.core.robOccupancy(1), 192u);
    }
}

TEST(Core, ThrottlePolicyStarvesThrottledThread)
{
    CoreParams params;
    params.fetchPolicy = FetchPolicy::Throttle;
    params.throttleRatio = 16;
    params.throttledThread = 0;
    Machine m(params);
    TraceGenerator g0(aluOnlyProfile(), 7, 0);
    TraceGenerator g1(aluOnlyProfile(), 8, 1);
    m.core.attachThread(0, &g0);
    m.core.attachThread(1, &g1);
    m.core.configureRob(ShareMode::Dynamic, 192, 192);
    m.core.configureLsq(ShareMode::Dynamic, 64, 64);
    m.core.runUntilTotalCommitted(40000);
    // The throttled thread gets roughly 1/(1+16) of the fetch slots.
    EXPECT_LT(m.core.uipc(0), m.core.uipc(1) * 0.25);
}

TEST(Core, RoundRobinFetchAlternates)
{
    CoreParams params;
    params.fetchPolicy = FetchPolicy::RoundRobin;
    Machine m(params);
    TraceGenerator g0(aluOnlyProfile(), 7, 0);
    TraceGenerator g1(aluOnlyProfile(), 8, 1);
    m.core.attachThread(0, &g0);
    m.core.attachThread(1, &g1);
    m.core.runUntilTotalCommitted(20000);
    EXPECT_NEAR(m.core.uipc(0) / m.core.uipc(1), 1.0, 0.15);
}

TEST(Core, WindowStatsReset)
{
    Machine m;
    TraceGenerator gen(aluOnlyProfile(), 9, 0);
    m.core.attachThread(0, &gen);
    m.core.run(500);
    EXPECT_GT(m.core.stats(0).committedOps, 0u);
    m.core.clearStats();
    EXPECT_EQ(m.core.stats(0).committedOps, 0u);
    EXPECT_EQ(m.core.windowCycles(), 0u);
    m.core.run(100);
    EXPECT_EQ(m.core.windowCycles(), 100u);
}

TEST(Core, DetachedThreadIdles)
{
    Machine m;
    TraceGenerator gen(aluOnlyProfile(), 9, 0);
    m.core.attachThread(0, &gen);
    m.core.run(1000);
    EXPECT_EQ(m.core.stats(1).committedOps, 0u);
    EXPECT_EQ(m.core.robOccupancy(1), 0u);
}

TEST(Core, MulAndFpLatenciesRespected)
{
    SynthProfile p = aluOnlyProfile(1);
    p.name = "fp_chain";
    p.longChainFrac = 1.0;
    p.fpFrac = 1.0; // every op is an FP op in one serial chain
    Machine m;
    TraceGenerator gen(p, 11, 0);
    m.core.attachThread(0, &gen);
    m.core.configureRob(ShareMode::Partitioned, 192, 192);
    m.core.runUntilCommitted(0, 2000); // warm the I-side
    m.core.clearStats();
    m.core.runUntilCommitted(0, 2000);
    // 4-cycle FP latency on a serial chain: IPC ~= 0.25.
    EXPECT_NEAR(m.core.uipc(0), 0.25, 0.05);
}

} // namespace
} // namespace stretch

/**
 * @file
 * Incident-layer tests: the engine's scheduled-event channel, the
 * dispatcher's incident actions, the typed-incident compiler, and the
 * drill catalog run as a pass/fail QoS regression suite (one ctest
 * case per preset + incident pairing).
 */

#include <cctype>
#include <gtest/gtest.h>
#include <limits>
#include <string>
#include <vector>

#include "queueing/event_engine.h"
#include "scenario/presets.h"
#include "sim/fleet.h"
#include "util/rng.h"

namespace stretch::scenario
{
namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---- Engine: the scheduled-event control channel ----------------------

/** Fixed-gap, fixed-demand callbacks (exact arithmetic). */
queueing::EventEngine::Callbacks
fixedTraffic(queueing::EventEngine &engine, double gap, double demand)
{
    queueing::EventEngine::Callbacks cb;
    cb.nextGap = [gap] { return gap; };
    cb.nextDemand = [demand](std::uint32_t) { return demand; };
    cb.place = [&engine](double, double, std::uint32_t) {
        return engine.leastFreeServer();
    };
    cb.finish = [](std::size_t, double start, double d) {
        return start + d;
    };
    return cb;
}

TEST(ControlChannel, FiresAtExactTimesBeforeCoincidingQuantum)
{
    queueing::EventEngine engine(1);
    // Arrivals at 1..10 ms, 0.4 ms demands, quantum boundaries at 1..10:
    // all event times are exact, so ordering is observable exactly.
    queueing::EventEngine::Callbacks cb = fixedTraffic(engine, 1.0, 0.4);
    cb.quantumMs = 1.0;

    std::vector<std::pair<char, double>> log; // 'c'ontrol / 'q'uantum / 'd'one
    std::vector<double> controls = {1.7, 2.0, 2.0, 5.25};
    std::size_t next = 0;
    cb.nextControl = [&]() -> double {
        return next < controls.size() ? controls[next] : kInf;
    };
    cb.onControl = [&](double t) {
        log.push_back({'c', t});
        ++next;
    };
    cb.onQuantum = [&](double t) { log.push_back({'q', t}); };
    cb.onComplete = [&](const queueing::Completion &c) {
        log.push_back({'d', c.finishMs});
    };
    engine.run(10, cb);

    // Event times never regress, and control events land at their exact
    // scheduled instants.
    double last = 0.0;
    std::vector<double> fired;
    for (const auto &[kind, t] : log) {
        EXPECT_GE(t, last) << "event log regressed at " << kind;
        last = t;
        if (kind == 'c')
            fired.push_back(t);
    }
    EXPECT_EQ(fired, controls);

    // The two t=2.0 control events fire before the t=2.0 quantum
    // boundary (one onControl call per pending event, loop refires).
    std::vector<char> at2;
    for (const auto &[kind, t] : log) {
        if (t == 2.0 && kind != 'd')
            at2.push_back(kind);
    }
    EXPECT_EQ(at2, (std::vector<char>{'c', 'c', 'q'}));
}

TEST(ControlChannel, AlwaysInfiniteChannelIsBitIdenticalToNone)
{
    auto replay = [](bool with_channel) {
        queueing::EventEngine engine(2);
        Rng rng(99, 0x1abe1);
        queueing::EventEngine::Callbacks cb;
        cb.nextGap = [&] { return rng.exponential(0.4); };
        cb.nextDemand = [&](std::uint32_t) { return rng.exponential(1.0); };
        cb.place = [&](double, double, std::uint32_t) {
            return engine.leastFreeServer();
        };
        cb.finish = [](std::size_t, double s, double d) { return s + d; };
        cb.quantumMs = 0.5;
        if (with_channel) {
            cb.nextControl = [] { return kInf; };
            cb.onControl = [](double) { FAIL() << "empty channel fired"; };
        }
        std::vector<double> finishes;
        cb.onComplete = [&](const queueing::Completion &c) {
            finishes.push_back(c.finishMs);
        };
        engine.run(4000, cb);
        return finishes;
    };
    EXPECT_EQ(replay(false), replay(true));
}

TEST(ControlChannelDeath, HalfConfiguredChannelDies)
{
    queueing::EventEngine engine(1);
    queueing::EventEngine::Callbacks cb = fixedTraffic(engine, 1.0, 0.4);
    cb.nextControl = [] { return kInf; }; // no onControl
    EXPECT_DEATH(engine.run(5, cb), "both nextControl and onControl");
}

// ---- Dispatcher: neutral incidents are bit-identical ------------------

sim::DispatchConfig
dispatchBase(std::uint64_t seed, queueing::EventQueueKind kind)
{
    sim::DispatchConfig cfg;
    cfg.rates = {sim::ModeRates{2.0, 1.7, 2.4}, sim::ModeRates{2.0, 1.7, 2.4},
                 sim::ModeRates{2.0, 1.7, 2.4}};
    cfg.policy = sim::PlacementPolicy::LeastLoaded;
    cfg.requests = 5000;
    cfg.seed = seed;
    cfg.queueKind = kind;
    cfg.control.kind = sim::ModePolicyKind::BacklogHysteresis;
    cfg.control.quantumMs = 0.5;
    cfg.timelineBucketMs = 50.0;
    return cfg;
}

/** Exact equality of everything the dispatcher reports (the property
 *  is bit-identity, not statistical closeness). */
void
expectIdentical(const sim::DispatchOutcome &a, const sim::DispatchOutcome &b)
{
    EXPECT_EQ(a.elapsedMs, b.elapsedMs);
    EXPECT_EQ(a.latencyMs.median, b.latencyMs.median);
    EXPECT_EQ(a.latencyMs.p99, b.latencyMs.p99);
    EXPECT_EQ(a.latencyMs.max, b.latencyMs.max);
    EXPECT_EQ(a.placed, b.placed);
    EXPECT_EQ(a.busyMs, b.busyMs);
    ASSERT_EQ(a.timeline.size(), b.timeline.size());
    for (std::size_t i = 0; i < a.timeline.size(); ++i) {
        EXPECT_EQ(a.timeline[i].completions, b.timeline[i].completions);
        EXPECT_EQ(a.timeline[i].p99Ms, b.timeline[i].p99Ms);
    }
}

TEST(IncidentIdentity, EmptyAndNeutralIncidentListsAreBitIdentical)
{
    using Kind = sim::IncidentAction::Kind;
    for (queueing::EventQueueKind kind :
         {queueing::EventQueueKind::Calendar,
          queueing::EventQueueKind::Heap}) {
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
            sim::DispatchOutcome quiet =
                sim::dispatchRequests(dispatchBase(seed, kind));

            // The same run with *neutral* incidents: scale-by-1 actions
            // exercise the whole control channel (events fire, state is
            // written) without changing any consumed value.
            sim::DispatchConfig cfg = dispatchBase(seed, kind);
            sim::IncidentAction arrival;
            arrival.kind = Kind::ArrivalScale;
            arrival.atMs = 120.0;
            arrival.value = 1.0;
            sim::IncidentAction rate;
            rate.kind = Kind::CoreRateScale;
            rate.atMs = 333.25;
            rate.value = 1.0;
            rate.core = 1;
            cfg.incidents = {arrival, rate};
            sim::DispatchOutcome neutral = sim::dispatchRequests(cfg);

            expectIdentical(quiet, neutral);
        }
    }
}

// ---- Dispatcher: retry-storm amplification ----------------------------

/** A retry storm as raw dispatcher actions: start at @p from, feedback
 *  ticks every @p tick ms, end at @p to. */
std::vector<sim::IncidentAction>
stormActions(double from, double to, double tick, double amp,
             double threshold)
{
    using Kind = sim::IncidentAction::Kind;
    std::vector<sim::IncidentAction> actions;
    sim::IncidentAction start;
    start.kind = Kind::RetryStormStart;
    start.atMs = from;
    start.value = amp;
    start.value2 = threshold;
    actions.push_back(start);
    for (double t = from + tick; t < to; t += tick) {
        sim::IncidentAction a;
        a.kind = Kind::RetryStormTick;
        a.atMs = t;
        actions.push_back(a);
    }
    sim::IncidentAction end;
    end.kind = Kind::RetryStormEnd;
    end.atMs = to;
    actions.push_back(end);
    return actions;
}

sim::DispatchOutcome
stormRun(double amp)
{
    sim::DispatchConfig cfg = dispatchBase(7, queueing::EventQueueKind::Calendar);
    cfg.requests = 8000;
    // Lateness bound below the mean service time (0.5 ms at rate 2), so
    // a meaningful fraction of completions count as late and the
    // feedback loop has something to amplify.
    cfg.incidents = stormActions(200.0, 700.0, 25.0, amp, 0.6);
    return sim::dispatchRequests(cfg);
}

TEST(RetryStorm, AmplificationIsDeterministicAndMonotone)
{
    // Deterministic: the same amplification replays bit-identically.
    expectIdentical(stormRun(3.0), stormRun(3.0));

    // Monotone: a higher amplification factor never *lowers* the
    // offered load — the stream of N requests finishes no later.
    double prev = kInf;
    for (double amp : {0.0, 1.0, 3.0, 6.0}) {
        double elapsed = stormRun(amp).elapsedMs;
        EXPECT_LE(elapsed, prev) << "amp " << amp << " slowed arrivals";
        prev = elapsed;
    }

    // And the storm actually bites: amp 6 ends the stream strictly
    // earlier than no amplification.
    EXPECT_LT(stormRun(6.0).elapsedMs, stormRun(0.0).elapsedMs);
}

// ---- Typed-incident compiler ------------------------------------------

Scenario
tinyScenario()
{
    sim::RunConfig core;
    core.workload0 = "web_search";
    core.workload1 = "mcf";
    return ScenarioBuilder()
        .name("tiny")
        .addCore(core)
        .addCore(core)
        .serviceClasses(
            workloads::ServiceClassRegistry::searchAnalyticsPair(6.0, 75.0))
        .expect();
}

TEST(IncidentCompiler, FlashCrowdCompilesToScaleAndRestore)
{
    Scenario s = tinyScenario();
    s.incidents = {FlashCrowd{10.0, 40.0, 2.5}};
    std::vector<sim::IncidentAction> actions = compileIncidents(s);
    ASSERT_EQ(actions.size(), 2u);
    EXPECT_EQ(actions[0].kind, sim::IncidentAction::Kind::ArrivalScale);
    EXPECT_EQ(actions[0].atMs, 10.0);
    EXPECT_EQ(actions[0].value, 2.5);
    EXPECT_EQ(actions[1].atMs, 40.0);
    EXPECT_EQ(actions[1].value, 1.0);
}

TEST(IncidentCompiler, RetryStormMaterialisesTicksAndAutoThreshold)
{
    Scenario s = tinyScenario();
    s.incidents = {RetryStorm{0.0, 10.0, 2.0, 3.0}};
    std::vector<sim::IncidentAction> actions = compileIncidents(s);
    // start + ticks at 3, 6, 9 + end
    ASSERT_EQ(actions.size(), 5u);
    EXPECT_EQ(actions[0].kind, sim::IncidentAction::Kind::RetryStormStart);
    EXPECT_EQ(actions[0].value, 2.0);
    // Auto threshold = the tightest class SLO (search at 6 ms).
    EXPECT_EQ(actions[0].value2, 6.0);
    EXPECT_EQ(actions[1].kind, sim::IncidentAction::Kind::RetryStormTick);
    EXPECT_EQ(actions[1].atMs, 3.0);
    EXPECT_EQ(actions[4].kind, sim::IncidentAction::Kind::RetryStormEnd);
    EXPECT_EQ(actions[4].atMs, 10.0);
}

TEST(IncidentCompiler, SloReshuffleResolvesFactorAgainstOldTarget)
{
    Scenario s = tinyScenario();
    s.incidents = {SloReshuffle{"search", 5.0, 0.5},
                   SloReshuffle{"analytics", 7.0, 0.0, 100.0}};
    std::vector<sim::IncidentAction> actions = compileIncidents(s);
    ASSERT_EQ(actions.size(), 2u);
    EXPECT_EQ(actions[0].kind,
              sim::IncidentAction::Kind::ClassSloRetarget);
    EXPECT_EQ(actions[0].value, 3.0); // 0.5 x the 6 ms search SLO
    EXPECT_EQ(actions[1].value, 100.0); // absolute target wins
}

TEST(IncidentCompiler, ActionsSortByTimeWithListOrderBreakingTies)
{
    Scenario s = tinyScenario();
    s.incidents = {CoreFailure{1, 50.0}, CoreDegradation{0, 20.0, 0.5},
                   FlashCrowd{20.0, 60.0, 1.5}};
    std::vector<sim::IncidentAction> actions = compileIncidents(s);
    ASSERT_EQ(actions.size(), 4u);
    // t=20: degradation (listed first) before the crowd's onset.
    EXPECT_EQ(actions[0].kind, sim::IncidentAction::Kind::CoreRateScale);
    EXPECT_EQ(actions[1].kind, sim::IncidentAction::Kind::ArrivalScale);
    EXPECT_EQ(actions[2].kind, sim::IncidentAction::Kind::CoreFail);
    EXPECT_EQ(actions[3].atMs, 60.0);
}

TEST(IncidentCompiler, TimeScalingCoversEveryTimeField)
{
    std::vector<Incident> incidents = {
        RetryStorm{0.2, 0.6, 2.0, 0.01}, CoreDegradation{0, 0.3, 0.5, 0.7}};
    scaleIncidentTimes(incidents, 1000.0);
    const RetryStorm &storm = std::get<RetryStorm>(incidents[0]);
    EXPECT_EQ(storm.startMs, 200.0);
    EXPECT_EQ(storm.endMs, 600.0);
    EXPECT_EQ(storm.tickMs, 10.0);
    const CoreDegradation &deg = std::get<CoreDegradation>(incidents[1]);
    EXPECT_EQ(deg.atMs, 300.0);
    EXPECT_EQ(deg.restoreMs, 700.0);

    std::vector<QosAssertion> assertions = {
        classTailAtMost("search", 9.0, 0.25, 0.5),
        recoveryWithin("search", 8.0, 0.25, 0.6)};
    scaleAssertionTimes(assertions, 1000.0);
    EXPECT_EQ(assertions[0].bound, 9.0); // latency bounds are not times
    EXPECT_EQ(assertions[0].fromMs, 250.0);
    EXPECT_EQ(assertions[0].untilMs, 500.0);
    EXPECT_EQ(assertions[1].bound, 250.0); // the recovery allowance is
    EXPECT_EQ(assertions[1].fromMs, 600.0);
    EXPECT_EQ(assertions[1].latencyBoundMs, 8.0);
}

TEST(IncidentValidation, BuilderReportsInvalidIncidents)
{
    sim::RunConfig core;
    core.workload0 = "web_search";
    core.workload1 = "mcf";
    BuildResult bad =
        ScenarioBuilder()
            .addCore(core)
            .addCore(core)
            .incident(FlashCrowd{50.0, 10.0, 2.0})          // ends first
            .incident(CoreFailure{7, 10.0})                 // no such core
            .incident(SloReshuffle{"search", 5.0, 0.5})     // no classes
            .tryBuild();
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.errorText().find("must end after it starts"),
              std::string::npos);
    EXPECT_NE(bad.errorText().find("targets core 7"), std::string::npos);
    EXPECT_NE(bad.errorText().find("unknown service class 'search'"),
              std::string::npos);
}

TEST(IncidentValidation, FailingEveryCoreIsRejected)
{
    sim::RunConfig core;
    core.workload0 = "web_search";
    core.workload1 = "mcf";
    BuildResult bad = ScenarioBuilder()
                          .addCore(core)
                          .addCore(core)
                          .incident(CoreFailure{0, 10.0})
                          .incident(CoreFailure{1, 20.0})
                          .tryBuild();
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.errorText().find("at least one core must survive"),
              std::string::npos);
}

// ---- The drill catalog: one regression case per pairing ---------------

std::vector<std::string>
drillNames()
{
    std::vector<std::string> names;
    for (const Drill &d : drillCatalog())
        names.push_back(d.name);
    return names;
}

class DrillCase : public ::testing::TestWithParam<std::string>
{
};

TEST_P(DrillCase, HoldsItsQosAssertions)
{
    const Drill &d = drill(GetParam());
    DrillOutcome o = runDrill(d);
    ASSERT_FALSE(o.assertions.empty());
    for (const AssertionResult &a : o.assertions)
        EXPECT_TRUE(a.pass) << d.name << ": " << a.detail;
    EXPECT_TRUE(o.pass) << d.description;
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, DrillCase, ::testing::ValuesIn(drillNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(DrillDeterminism, SameDrillSameVerdictBitForBit)
{
    // One drill per preset; re-running must replay exactly.
    for (const char *name :
         {"fig13/flash-crowd", "fig15/retry-storm", "guardrail/slo-tighten",
          "mix/storm-plus-degradation"}) {
        DrillOutcome a = runDrill(drill(name));
        DrillOutcome b = runDrill(drill(name));
        EXPECT_EQ(a.horizonMs, b.horizonMs) << name;
        expectIdentical(a.result.dispatch, b.result.dispatch);
        ASSERT_EQ(a.assertions.size(), b.assertions.size());
        for (std::size_t i = 0; i < a.assertions.size(); ++i) {
            EXPECT_EQ(a.assertions[i].pass, b.assertions[i].pass) << name;
            EXPECT_EQ(a.assertions[i].observed, b.assertions[i].observed)
                << name;
        }
    }
}

TEST(DrillTeeth, GuardrailFlashCrowdNeedsClassAwareControl)
{
    // The documented teeth pairing: the same drill that passes under
    // the preset's class-aware routing + honoured throttle FAILS when
    // the control config is lobotomised — proof the assertions bind.
    const Drill &d = drill("guardrail/flash-crowd");
    EXPECT_TRUE(runDrill(d).pass);

    DrillOutcome blind = runDrill(d, [](Scenario &s) {
        s.placement = sim::PlacementPolicy::RoundRobin;
        s.control.honorThrottle = false;
    });
    EXPECT_FALSE(blind.pass);
    // Both the windowed tail bound and the attainment floor break.
    ASSERT_EQ(blind.assertions.size(), 2u);
    EXPECT_FALSE(blind.assertions[0].pass) << blind.assertions[0].detail;
    EXPECT_FALSE(blind.assertions[1].pass) << blind.assertions[1].detail;
}

} // namespace
} // namespace stretch::scenario

/**
 * @file
 * Unit tests for the PC-indexed stride prefetcher.
 */

#include <vector>

#include <gtest/gtest.h>

#include "cache/prefetcher.h"

namespace stretch
{
namespace
{

TEST(Prefetcher, DetectsConstantStride)
{
    StridePrefetcher pf(32, 2);
    std::vector<Addr> out;
    const Addr pc = 0x1000;
    // First two observations train; the third confirms confidence.
    pf.observe(0, pc, 0x10000, out);
    EXPECT_TRUE(out.empty());
    pf.observe(0, pc, 0x10040, out);
    EXPECT_TRUE(out.empty());
    pf.observe(0, pc, 0x10080, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 0x10080u + 0x40);
    EXPECT_EQ(out[1], 0x10080u + 0x80);
}

TEST(Prefetcher, IgnoresRandomPattern)
{
    StridePrefetcher pf(32, 2);
    std::vector<Addr> out;
    const Addr pc = 0x2000;
    Addr addrs[] = {0x1000, 0x9040, 0x3500, 0x77000, 0x120};
    for (Addr a : addrs)
        pf.observe(0, pc, a, out);
    EXPECT_TRUE(out.empty());
}

TEST(Prefetcher, SubBlockStrideSkipsSameBlock)
{
    // An 8-byte stride stays within the current block most of the time;
    // only cross-block candidates are emitted.
    StridePrefetcher pf(32, 1);
    std::vector<Addr> out;
    const Addr pc = 0x3000;
    for (int i = 0; i < 6; ++i)
        pf.observe(0, pc, 0x4000 + i * 8, out);
    EXPECT_TRUE(out.empty());
}

TEST(Prefetcher, TracksMultiplePcsIndependently)
{
    StridePrefetcher pf(32, 1);
    std::vector<Addr> out;
    for (int i = 0; i < 4; ++i) {
        pf.observe(0, 0x100, 0x10000 + i * 64, out);
        pf.observe(0, 0x200, 0x90000 + i * 128, out);
    }
    // Both streams confirmed; last observations each emitted a candidate.
    ASSERT_GE(out.size(), 2u);
    EXPECT_EQ(pf.issued(), out.size());
}

TEST(Prefetcher, CapacityEvictsLru)
{
    StridePrefetcher pf(2, 1);
    std::vector<Addr> out;
    // Train stream A to confidence.
    for (int i = 0; i < 3; ++i)
        pf.observe(0, 0xa, 0x1000 + i * 64, out);
    out.clear();
    // Two new PCs evict A (table size 2).
    pf.observe(0, 0xb, 0x2000, out);
    pf.observe(0, 0xc, 0x3000, out);
    // A must retrain from scratch: next observation emits nothing.
    pf.observe(0, 0xa, 0x1000 + 3 * 64, out);
    EXPECT_TRUE(out.empty());
}

TEST(Prefetcher, StrideChangeResetsConfidence)
{
    StridePrefetcher pf(32, 1);
    std::vector<Addr> out;
    const Addr pc = 0x700;
    for (int i = 0; i < 3; ++i)
        pf.observe(0, pc, 0x5000 + i * 64, out);
    out.clear();
    pf.observe(0, pc, 0x9000, out); // break the stride
    EXPECT_TRUE(out.empty());
    pf.observe(0, pc, 0x9000 + 256, out); // new stride, first occurrence
    EXPECT_TRUE(out.empty());
    pf.observe(0, pc, 0x9000 + 512, out); // confirmed again
    EXPECT_FALSE(out.empty());
}

TEST(Prefetcher, PerThreadStreams)
{
    StridePrefetcher pf(32, 1);
    std::vector<Addr> out;
    // Same PC on different threads must not corrupt each other's stride.
    for (int i = 0; i < 4; ++i) {
        pf.observe(0, 0x100, 0x10000 + i * 64, out);
        pf.observe(1, 0x100, 0x50000 + i * 128, out);
    }
    EXPECT_GE(out.size(), 2u);
}

TEST(Prefetcher, Reset)
{
    StridePrefetcher pf(32, 1);
    std::vector<Addr> out;
    for (int i = 0; i < 3; ++i)
        pf.observe(0, 0x100, 0x10000 + i * 64, out);
    pf.reset();
    EXPECT_EQ(pf.issued(), 0u);
    out.clear();
    pf.observe(0, 0x100, 0x10000 + 3 * 64, out);
    EXPECT_TRUE(out.empty()); // training state gone
}

} // namespace
} // namespace stretch

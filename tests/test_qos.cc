/**
 * @file
 * Unit tests for the Stretch control plane: the mode register encoding,
 * the StretchController (partition programming + mode-change flush), and
 * the CPI2-style monitor's decision ladder.
 */

#include <gtest/gtest.h>

#include "qos/cpi2_monitor.h"
#include "qos/stretch_controller.h"
#include "workload/generator.h"

namespace stretch
{
namespace
{

struct Machine
{
    Machine()
        : mem([] {
              HierarchyConfig cfg;
              cfg.llcWayPartition = {8, 8};
              return cfg;
          }()),
          core(CoreParams{}, mem, bp)
    {
    }
    MemoryHierarchy mem;
    BranchUnit bp;
    SmtCore core;
};

TEST(ModeRegister, EncodeDecode)
{
    StretchModeRegister reg;
    EXPECT_EQ(reg.decode(), StretchMode::Baseline);
    reg.write(StretchModeRegister::encode(StretchMode::BatchBoost));
    EXPECT_EQ(reg.decode(), StretchMode::BatchBoost);
    EXPECT_EQ(reg.read(), 0x1);
    reg.write(StretchModeRegister::encode(StretchMode::QosBoost));
    EXPECT_EQ(reg.decode(), StretchMode::QosBoost);
    EXPECT_EQ(reg.read(), 0x3);
    reg.write(StretchModeRegister::encode(StretchMode::Baseline));
    EXPECT_EQ(reg.decode(), StretchMode::Baseline);
}

TEST(ModeRegister, UndefinedBitsMasked)
{
    StretchModeRegister reg;
    reg.write(0xff);
    EXPECT_EQ(reg.read(), 0x3);
    // B/Q bit without the S-bit means Stretch is disengaged.
    reg.write(0x2);
    EXPECT_EQ(reg.decode(), StretchMode::Baseline);
}

TEST(Controller, BModeProgramsSkewAndLsq)
{
    Machine m;
    StretchController ctl(m.core, 0, {56, 136}, {136, 56});
    ctl.engage(StretchMode::BatchBoost);
    EXPECT_EQ(m.core.rob().limit(0), 56u);
    EXPECT_EQ(m.core.rob().limit(1), 136u);
    // LSQ managed in proportion to the ROB (64 total, 192 ROB -> 1:3).
    EXPECT_EQ(m.core.lsq().limit(0), 56u / 3);
    EXPECT_EQ(m.core.lsq().limit(1), 136u / 3);
}

TEST(Controller, QModeMirrors)
{
    Machine m;
    StretchController ctl(m.core, 0);
    ctl.engage(StretchMode::QosBoost);
    EXPECT_EQ(m.core.rob().limit(0), 136u);
    EXPECT_EQ(m.core.rob().limit(1), 56u);
}

TEST(Controller, BaselineRestoresEqualPartition)
{
    Machine m;
    StretchController ctl(m.core, 0);
    ctl.engage(StretchMode::BatchBoost);
    ctl.engage(StretchMode::Baseline);
    EXPECT_EQ(m.core.rob().limit(0), 96u);
    EXPECT_EQ(m.core.rob().limit(1), 96u);
    EXPECT_EQ(m.core.lsq().limit(0), 32u);
}

TEST(Controller, ModeChangeFlushesPipeline)
{
    Machine m;
    SynthProfile p;
    p.name = "t";
    p.loadFrac = 0.2;
    p.codeBytes = 4096;
    TraceGenerator gen(p, 1, 0);
    m.core.attachThread(0, &gen);
    m.core.run(3000); // past the cold I-side misses
    ASSERT_GT(m.core.robOccupancy(0), 0u);
    StretchController ctl(m.core, 0);
    ctl.engage(StretchMode::BatchBoost);
    EXPECT_EQ(m.core.robOccupancy(0), 0u); // squashed
    EXPECT_EQ(ctl.modeChanges(), 1u);
}

TEST(Controller, ReengageSameModeIsNoOp)
{
    Machine m;
    StretchController ctl(m.core, 0);
    ctl.engage(StretchMode::BatchBoost);
    ctl.engage(StretchMode::BatchBoost);
    EXPECT_EQ(ctl.modeChanges(), 1u);
}

TEST(Controller, LsThreadReassignmentMirrorsLimits)
{
    // Either hardware thread can host the LS software thread
    // (Section IV-D).
    Machine m;
    StretchController ctl(m.core, 0);
    ctl.engage(StretchMode::BatchBoost);
    EXPECT_EQ(m.core.rob().limit(0), 56u);
    ctl.setLsThread(1);
    EXPECT_EQ(m.core.rob().limit(1), 56u);
    EXPECT_EQ(m.core.rob().limit(0), 136u);
    EXPECT_EQ(ctl.lsThread(), 1);
}

MonitorConfig
monitorConfig()
{
    MonitorConfig cfg;
    cfg.qosTarget = 100.0;
    cfg.windowRequests = 8;
    cfg.violationsBeforeThrottle = 2;
    return cfg;
}

void
feedWindow(Cpi2Monitor &mon, double latency)
{
    while (!mon.windowReady())
        mon.recordLatency(latency);
}

TEST(Monitor, EngagesBModeOnSlack)
{
    Cpi2Monitor mon(monitorConfig());
    feedWindow(mon, 20.0); // far below the 100 ms target
    MonitorDecision d = mon.evaluateWindow();
    EXPECT_EQ(d.mode, StretchMode::BatchBoost);
    EXPECT_FALSE(d.throttleCoRunner);
}

TEST(Monitor, StaysBaselineInMidBand)
{
    Cpi2Monitor mon(monitorConfig());
    feedWindow(mon, 75.0); // between engage (60) and qmode (95) thresholds
    EXPECT_EQ(mon.evaluateWindow().mode, StretchMode::Baseline);
}

TEST(Monitor, HysteresisKeepsBMode)
{
    Cpi2Monitor mon(monitorConfig());
    feedWindow(mon, 20.0);
    mon.evaluateWindow(); // B-mode engaged
    feedWindow(mon, 75.0); // above engage (60) but below disengage (85)
    EXPECT_EQ(mon.evaluateWindow().mode, StretchMode::BatchBoost);
    feedWindow(mon, 90.0); // above disengage
    EXPECT_NE(mon.evaluateWindow().mode, StretchMode::BatchBoost);
}

TEST(Monitor, ViolationDisengagesThenThrottles)
{
    Cpi2Monitor mon(monitorConfig());
    feedWindow(mon, 20.0);
    mon.evaluateWindow(); // B-mode
    feedWindow(mon, 120.0); // violation 1: step out of B-mode
    MonitorDecision d1 = mon.evaluateWindow();
    EXPECT_NE(d1.mode, StretchMode::BatchBoost);
    EXPECT_FALSE(d1.throttleCoRunner);
    feedWindow(mon, 120.0); // violation 2
    mon.evaluateWindow();
    feedWindow(mon, 120.0); // violation 3: beyond tolerance -> throttle
    MonitorDecision d3 = mon.evaluateWindow();
    EXPECT_TRUE(d3.throttleCoRunner);
    EXPECT_EQ(mon.violationWindows(), 3u);
}

TEST(Monitor, RecoveryLiftsThrottle)
{
    Cpi2Monitor mon(monitorConfig());
    for (int i = 0; i < 4; ++i) {
        feedWindow(mon, 150.0);
        mon.evaluateWindow();
    }
    ASSERT_TRUE(mon.current().throttleCoRunner);
    feedWindow(mon, 20.0); // load receded
    MonitorDecision d = mon.evaluateWindow();
    EXPECT_FALSE(d.throttleCoRunner);
    // Next quiet window re-engages B-mode.
    feedWindow(mon, 20.0);
    EXPECT_EQ(mon.evaluateWindow().mode, StretchMode::BatchBoost);
}

TEST(Monitor, QModeWithoutProvisioningFallsToBaseline)
{
    MonitorConfig cfg = monitorConfig();
    cfg.hasQMode = false;
    Cpi2Monitor mon(cfg);
    feedWindow(mon, 120.0);
    EXPECT_EQ(mon.evaluateWindow().mode, StretchMode::Baseline);
}

TEST(Monitor, QModeEngagedNearTarget)
{
    Cpi2Monitor mon(monitorConfig());
    feedWindow(mon, 97.0); // above qmodeFraction (95) but below target
    EXPECT_EQ(mon.evaluateWindow().mode, StretchMode::QosBoost);
}

TEST(Monitor, TailUsesConfiguredPercentile)
{
    MonitorConfig cfg = monitorConfig();
    cfg.windowRequests = 100;
    Cpi2Monitor mon(cfg);
    // 95 fast requests and five slow ones: p99 captures the outliers.
    for (int i = 0; i < 95; ++i)
        mon.recordLatency(10.0);
    for (int i = 0; i < 5; ++i)
        mon.recordLatency(500.0);
    MonitorDecision d = mon.evaluateWindow();
    EXPECT_GT(d.tailLatency, 100.0);
}

TEST(Monitor, EvaluateWindowNowUsesPartialWindow)
{
    Cpi2Monitor mon(monitorConfig());
    // Three samples of an eight-request window: still enough for a
    // quantum-boundary decision.
    mon.recordLatency(20.0);
    mon.recordLatency(25.0);
    mon.recordLatency(30.0);
    ASSERT_FALSE(mon.windowReady());
    EXPECT_EQ(mon.windowFill(), 3u);
    MonitorDecision d = mon.evaluateWindowNow();
    EXPECT_EQ(d.mode, StretchMode::BatchBoost);
    EXPECT_EQ(mon.windowFill(), 0u); // window consumed
}

TEST(Monitor, EvaluateWindowNowEmptyKeepsLastDecision)
{
    Cpi2Monitor mon(monitorConfig());
    feedWindow(mon, 20.0);
    mon.evaluateWindow(); // B-mode engaged
    MonitorDecision d = mon.evaluateWindowNow();
    EXPECT_EQ(d.mode, StretchMode::BatchBoost);
    EXPECT_EQ(mon.violationWindows(), 0u); // no window was evaluated
}

TEST(Monitor, CpiOutlierDetection)
{
    Cpi2Monitor mon(monitorConfig());
    for (int i = 0; i < 32; ++i)
        mon.recordCpi(1.0 + 0.01 * (i % 5));
    EXPECT_FALSE(mon.cpiOutlier());
    mon.recordCpi(3.0);
    EXPECT_TRUE(mon.cpiOutlier());
}

TEST(Monitor, EvaluateTailDirectFeed)
{
    Cpi2Monitor mon(monitorConfig());
    EXPECT_EQ(mon.evaluateTail(10.0).mode, StretchMode::BatchBoost);
    EXPECT_EQ(mon.evaluateTail(120.0).mode, StretchMode::QosBoost);
}

TEST(Monitor, CpiOutlierFastPathsThrottle)
{
    // Without CPI signal, a single violating window only steps the mode.
    Cpi2Monitor slow(monitorConfig());
    MonitorDecision d = slow.evaluateTail(120.0);
    EXPECT_FALSE(d.throttleCoRunner);

    // With an antagonist named by the CPI outlier detector, the same
    // violating window throttles immediately — the corrective action
    // skips the remaining tolerance windows.
    Cpi2Monitor fast(monitorConfig());
    for (int i = 0; i < 32; ++i)
        fast.recordCpi(1.0 + 0.01 * (i % 5));
    fast.recordCpi(3.0);
    ASSERT_TRUE(fast.cpiOutlier());
    d = fast.evaluateTail(120.0);
    EXPECT_TRUE(d.throttleCoRunner);
    EXPECT_EQ(fast.throttleEngagements(), 1u);
}

TEST(Monitor, ThrottleEngagementsCountDistinctEngages)
{
    Cpi2Monitor mon(monitorConfig());
    for (int i = 0; i < 4; ++i)
        mon.evaluateTail(150.0); // violations -> throttle
    ASSERT_TRUE(mon.current().throttleCoRunner);
    EXPECT_EQ(mon.throttleEngagements(), 1u); // held, not re-engaged
    mon.evaluateTail(20.0); // recovery lifts the throttle
    EXPECT_FALSE(mon.current().throttleCoRunner);
    for (int i = 0; i < 4; ++i)
        mon.evaluateTail(150.0);
    EXPECT_EQ(mon.throttleEngagements(), 2u);
}

} // namespace
} // namespace stretch

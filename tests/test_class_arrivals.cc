/**
 * @file
 * Per-class arrival-process tests: the superposition substrate (rate
 * split, determinism, per-class burstiness CV) and its dispatch-level
 * behaviour (diurnal phase shift visible in per-class timelines, the
 * trace-normalised default arrival rate).
 */

#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>
#include <vector>

#include "queueing/arrivals.h"
#include "sim/fleet.h"
#include "workload/service_class.h"

namespace stretch
{
namespace
{

using queueing::ArrivalProcess;
using queueing::ClassArrivalSuperposition;
using TaggedArrival = queueing::EventEngine::Arrival;

/** Per-class arrival times reconstructed from a merged stream. */
std::vector<std::vector<double>>
collectArrivals(ClassArrivalSuperposition &sup, std::size_t classes,
                std::size_t draws)
{
    std::vector<std::vector<double>> times(classes);
    double clock = 0.0;
    for (std::size_t i = 0; i < draws; ++i) {
        TaggedArrival a = sup.next();
        EXPECT_GE(a.gapMs, 0.0);
        EXPECT_LT(a.classId, classes);
        clock += a.gapMs;
        times[a.classId % classes].push_back(clock);
    }
    return times;
}

/** Coefficient of variation of the inter-arrival gaps of one class. */
double
interArrivalCv(const std::vector<double> &times)
{
    std::vector<double> gaps;
    gaps.reserve(times.size());
    for (std::size_t i = 1; i < times.size(); ++i)
        gaps.push_back(times[i] - times[i - 1]);
    double mean = 0.0;
    for (double g : gaps)
        mean += g;
    mean /= static_cast<double>(gaps.size());
    double var = 0.0;
    for (double g : gaps)
        var += (g - mean) * (g - mean);
    var /= static_cast<double>(gaps.size());
    return std::sqrt(var) / mean;
}

TEST(ClassArrivalSuperposition, SplitsTheRateByShareAndStaysDeterministic)
{
    auto make = [] {
        std::vector<ClassArrivalSuperposition::Stream> streams;
        streams.push_back({ArrivalProcess::poisson(3.0), Rng(1, 11)});
        streams.push_back({ArrivalProcess::poisson(1.0), Rng(1, 22)});
        return ClassArrivalSuperposition(std::move(streams));
    };

    ClassArrivalSuperposition a = make();
    auto times = collectArrivals(a, 2, 100000);

    // 3:1 rate split → ~75% of merged arrivals belong to class 0.
    double frac0 = static_cast<double>(times[0].size()) / 100000.0;
    EXPECT_NEAR(frac0, 0.75, 0.02);

    // The merged stream is a pure function of the component streams:
    // two same-construction instances replay bit-identical streams.
    ClassArrivalSuperposition c = make();
    ClassArrivalSuperposition d = make();
    for (int i = 0; i < 5000; ++i) {
        TaggedArrival x = c.next();
        TaggedArrival y = d.next();
        ASSERT_EQ(x.gapMs, y.gapMs); // bit-identical
        ASSERT_EQ(x.classId, y.classId);
    }
}

TEST(ClassArrivalSuperposition, PerClassBurstinessShowsInInterArrivalCv)
{
    // Class 0 rides a Poisson process (CV = 1); class 1 an MMPP-2 with a
    // 4x burst ratio (CV well above 1). Each must keep its own shape
    // inside the superposition — the satellite acceptance statistic.
    std::vector<ClassArrivalSuperposition::Stream> streams;
    streams.push_back({ArrivalProcess::poisson(2.0), Rng(7, 100)});
    streams.push_back(
        {ArrivalProcess::mmpp(2.0, 4.0, 200.0, 40.0), Rng(7, 200)});
    ClassArrivalSuperposition sup(std::move(streams));

    auto times = collectArrivals(sup, 2, 200000);
    ASSERT_GT(times[0].size(), 10000u);
    ASSERT_GT(times[1].size(), 10000u);

    double cv_poisson = interArrivalCv(times[0]);
    double cv_bursty = interArrivalCv(times[1]);
    EXPECT_NEAR(cv_poisson, 1.0, 0.05);
    EXPECT_GT(cv_bursty, 1.25);
    EXPECT_GT(cv_bursty, cv_poisson + 0.2);
}

TEST(ServiceClassRegistry, ArrivalSharesFallBackToWeights)
{
    workloads::ServiceClassRegistry reg =
        workloads::ServiceClassRegistry::searchAnalyticsPair(5.0, 50.0);
    // Weights 1.0 and 0.5, no explicit shares.
    std::vector<double> shares = reg.arrivalShares();
    ASSERT_EQ(shares.size(), 2u);
    EXPECT_DOUBLE_EQ(shares[0], 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(shares[1], 1.0 / 3.0);
    EXPECT_FALSE(reg.hasCustomTraffic());

    // An explicit share overrides the weight, and the vector renormalises.
    reg.classAt(1).traffic.rateShare = 1.0;
    shares = reg.arrivalShares();
    EXPECT_DOUBLE_EQ(shares[0], 0.5);
    EXPECT_DOUBLE_EQ(shares[1], 0.5);
    EXPECT_TRUE(reg.hasCustomTraffic());
}

/** Fixed-capacity two-class dispatch config (no microarch simulation). */
sim::DispatchConfig
twoClassConfig()
{
    sim::DispatchConfig cfg;
    cfg.rates = {sim::ModeRates::flat(2.0), sim::ModeRates::flat(2.0),
                 sim::ModeRates::flat(2.0), sim::ModeRates::flat(2.0)};
    cfg.policy = sim::PlacementPolicy::LeastLoaded;
    cfg.requests = 60000;
    cfg.seed = 99;

    workloads::ServiceClass a;
    a.name = "home";
    a.shape = workloads::DemandShape::Lognormal;
    a.sloMs = 20.0;
    a.weight = 1.0;
    cfg.classes.add(a);

    workloads::ServiceClass b = a;
    b.name = "abroad";
    cfg.classes.add(b);
    return cfg;
}

TEST(PerClassDispatch, SixHourPhaseOffsetShiftsTheCompletionTimeline)
{
    // Both classes replay the same day, but "abroad" lives six time
    // zones ahead: its per-bucket completion peak must land ~6 replayed
    // hours before the home class's peak.
    sim::DispatchConfig cfg = twoClassConfig();
    cfg.diurnalTrace = queueing::DiurnalTrace::youtubeCluster();
    cfg.msPerHour = 60.0;
    cfg.timelineBucketMs = cfg.msPerHour; // one bucket per replayed hour
    cfg.perClassArrivals = true;
    cfg.classes.classAt(1).traffic.phaseOffsetHours = 6.0;
    // Size the stream to roughly one replayed day at the default rate.
    cfg.requests = static_cast<std::uint64_t>(
        0.7 * 8.0 * 24.0 * cfg.msPerHour); // 70% of 4x2.0 req/ms capacity

    sim::DispatchOutcome out = sim::dispatchRequests(cfg);
    ASSERT_GE(out.timeline.size(), 20u);

    for (std::size_t b = 0; b < out.timeline.size() && b < 24; ++b)
        ASSERT_EQ(out.timeline[b].perClass.size(), 2u);

    // Circular mean phase (hours) of a class's per-bucket completion
    // histogram — robust against argmax noise on the daytime plateau.
    auto meanPhaseHours = [&](std::size_t cls) {
        double s = 0.0, c = 0.0;
        for (std::size_t b = 0; b < out.timeline.size() && b < 24; ++b) {
            auto n = static_cast<double>(
                out.timeline[b].perClass[cls].completions);
            double angle = 2.0 * 3.14159265358979323846 *
                           (static_cast<double>(b) + 0.5) / 24.0;
            s += n * std::sin(angle);
            c += n * std::cos(angle);
        }
        double hours = std::atan2(s, c) * 24.0 /
                       (2.0 * 3.14159265358979323846);
        return hours < 0.0 ? hours + 24.0 : hours;
    };

    // The abroad class experiences hour h as trace hour h+6, so its
    // wall-clock completion mass sits 6 replayed hours EARLIER than the
    // home class's (circular difference, with sampling slack).
    double shift = meanPhaseHours(0) - meanPhaseHours(1);
    if (shift < 0.0)
        shift += 24.0;
    EXPECT_NEAR(shift, 6.0, 1.0)
        << "home phase " << meanPhaseHours(0) << " h, abroad phase "
        << meanPhaseHours(1) << " h";

    // Both classes completed substantial traffic (~4k offered each).
    EXPECT_GT(out.perClass[0].completed, 3000u);
    EXPECT_GT(out.perClass[1].completed, 3000u);
}

TEST(PerClassDispatch, SharedAndPerClassStreamsAgreeOnOfferedRate)
{
    // Same registry, same default rate: the per-class superposition must
    // offer the same aggregate rate as the shared stream (completions
    // and throughput in the same ballpark), while per-class streams stay
    // independent of each other.
    sim::DispatchConfig shared = twoClassConfig();
    sim::DispatchOutcome a = sim::dispatchRequests(shared);

    sim::DispatchConfig split = twoClassConfig();
    split.perClassArrivals = true;
    sim::DispatchOutcome b = sim::dispatchRequests(split);

    EXPECT_DOUBLE_EQ(a.offeredRatePerMs, b.offeredRatePerMs);
    EXPECT_NEAR(b.elapsedMs, a.elapsedMs, 0.05 * a.elapsedMs);
    // Class mix: weights 1:1 → about half the completions each.
    double frac = static_cast<double>(b.perClass[0].completed) /
                  static_cast<double>(split.requests);
    EXPECT_NEAR(frac, 0.5, 0.02);
}

TEST(PerClassDispatch, PerClassArrivalsAreDeterministicInSeed)
{
    sim::DispatchConfig cfg = twoClassConfig();
    cfg.perClassArrivals = true;
    cfg.classes.classAt(1).traffic.burstRatio = 4.0;
    sim::DispatchOutcome a = sim::dispatchRequests(cfg);
    sim::DispatchOutcome b = sim::dispatchRequests(cfg);
    EXPECT_EQ(a.latencyMs.p99, b.latencyMs.p99); // bit-identical
    EXPECT_EQ(a.placed, b.placed);
    EXPECT_EQ(a.perClass[1].latencyMs.p99, b.perClass[1].latencyMs.p99);
}

TEST(DiurnalDispatch, DefaultRateTargetsSeventyPercentMeanLoad)
{
    // The regression the satellite fixes: with a diurnal trace the
    // 70%-of-capacity default used to be applied as the PEAK rate,
    // making the effective mean load trace-dependent (70% x meanLoad).
    // The default peak is now normalised by the trace's mean load, so
    // the mean offered rate is 70% of capacity for ANY trace shape.
    sim::DispatchConfig cfg;
    cfg.rates = {sim::ModeRates::flat(1.0), sim::ModeRates::flat(1.0)};
    cfg.requests = 100;

    sim::DispatchOutcome flat = sim::dispatchRequests(cfg);
    EXPECT_DOUBLE_EQ(flat.offeredRatePerMs, 1.4); // 0.7 x 2.0 capacity

    for (const queueing::DiurnalTrace &trace :
         {queueing::DiurnalTrace::webSearchCluster(),
          queueing::DiurnalTrace::youtubeCluster()}) {
        sim::DispatchConfig diurnal = cfg;
        diurnal.diurnalTrace = trace;
        diurnal.msPerHour = 10.0;
        sim::DispatchOutcome out = sim::dispatchRequests(diurnal);
        // offeredRatePerMs is the peak; peak x meanLoad == the 70% mean.
        EXPECT_DOUBLE_EQ(out.offeredRatePerMs * trace.meanLoad(), 1.4);
        EXPECT_GT(out.offeredRatePerMs, 1.4); // peak above the mean
    }

    // An explicit rate is still the peak rate, untouched.
    sim::DispatchConfig explicit_rate = cfg;
    explicit_rate.diurnalTrace = queueing::DiurnalTrace::webSearchCluster();
    explicit_rate.msPerHour = 10.0;
    explicit_rate.arrivalRatePerMs = 3.0;
    EXPECT_DOUBLE_EQ(sim::dispatchRequests(explicit_rate).offeredRatePerMs,
                     3.0);
}

/** The pre-tournament linear-scan merge, hand-rolled as the reference:
 *  earliest pending time wins, strict `<` so ties go to the lowest
 *  class id, only the winner redraws. */
struct LinearReferenceMerge
{
    std::vector<ClassArrivalSuperposition::Stream> streams;
    std::vector<double> nextAtMs;
    double clock = 0.0;

    explicit LinearReferenceMerge(
        std::vector<ClassArrivalSuperposition::Stream> s)
        : streams(std::move(s))
    {
        for (auto &st : streams)
            nextAtMs.push_back(st.process.next(st.rng));
    }

    TaggedArrival
    next()
    {
        std::size_t win = 0;
        for (std::size_t k = 1; k < nextAtMs.size(); ++k) {
            if (nextAtMs[k] < nextAtMs[win])
                win = k;
        }
        TaggedArrival out;
        out.gapMs = nextAtMs[win] - clock;
        out.classId = static_cast<std::uint32_t>(win);
        clock = nextAtMs[win];
        auto &s = streams[win];
        nextAtMs[win] = clock + s.process.next(s.rng);
        return out;
    }
};

/** A mixed-shape stream set: Poisson and MMPP processes at distinct
 *  rates, each with its own decorrelated RNG. */
std::vector<ClassArrivalSuperposition::Stream>
mixedStreams(std::size_t classes, std::uint64_t seed)
{
    std::vector<ClassArrivalSuperposition::Stream> streams;
    streams.reserve(classes);
    for (std::size_t k = 0; k < classes; ++k) {
        double rate = 0.3 + 0.17 * static_cast<double>(k);
        ArrivalProcess p =
            k % 3 == 1
                ? ArrivalProcess::mmpp(rate, 3.0, 150.0, 50.0)
                : ArrivalProcess::poisson(rate);
        streams.push_back({std::move(p), Rng(seed, mixSeed(0xa221, k))});
    }
    return streams;
}

TEST(ClassArrivalSuperposition, TournamentMatchesLinearReference)
{
    // The winner tree must reproduce the linear scan's merged stream
    // exactly — same winner, same gap, every draw — across class counts
    // on both sides of the power-of-two padding.
    for (std::size_t classes : {1u, 2u, 3u, 5u, 8u, 16u, 33u}) {
        ClassArrivalSuperposition tournament(mixedStreams(classes, 99));
        LinearReferenceMerge linear(mixedStreams(classes, 99));
        for (int i = 0; i < 4000; ++i) {
            TaggedArrival a = tournament.next();
            TaggedArrival b = linear.next();
            ASSERT_EQ(a.classId, b.classId)
                << classes << " classes, draw " << i;
            ASSERT_EQ(a.gapMs, b.gapMs) // bit-identical, not approximate
                << classes << " classes, draw " << i;
        }
    }
}

TEST(ClassArrivalSuperposition, TournamentTieBreaksToLowestClassId)
{
    // Two identical (process, seed) streams produce identical pending
    // times: the first merged arrival is an exact tie and must go to
    // class 0, with class 1's identical arrival following at gap 0.
    std::vector<ClassArrivalSuperposition::Stream> streams;
    streams.push_back({ArrivalProcess::poisson(1.0), Rng(5, 77)});
    streams.push_back({ArrivalProcess::poisson(1.0), Rng(5, 77)});
    ClassArrivalSuperposition sup(std::move(streams));
    TaggedArrival first = sup.next();
    EXPECT_EQ(first.classId, 0u);
    TaggedArrival second = sup.next();
    EXPECT_EQ(second.classId, 1u);
    EXPECT_EQ(second.gapMs, 0.0);
}

} // namespace
} // namespace stretch

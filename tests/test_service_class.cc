/**
 * @file
 * Service-class subsystem tests: the registry's class mix and demand
 * distributions, the class-aware router (hot-class pinning, hour-aware
 * reservation, admission control), per-class dispatch reporting, and the
 * per-class monitor wiring into the SlackDriven ladder.
 */

#include <cstdint>
#include <gtest/gtest.h>

#include "queueing/diurnal.h"
#include "sim/class_router.h"
#include "sim/fleet.h"
#include "util/rng.h"
#include "workload/service_class.h"

namespace stretch
{
namespace
{

using workloads::ClassId;
using workloads::DemandShape;
using workloads::ServiceClass;
using workloads::ServiceClassRegistry;

ServiceClass
makeClass(const std::string &name, double slo_ms, unsigned priority,
          bool sheddable, double weight = 1.0)
{
    ServiceClass c;
    c.name = name;
    c.sloMs = slo_ms;
    c.priority = priority;
    c.sheddable = sheddable;
    c.weight = weight;
    return c;
}

/** Tight interactive class + loose sheddable bulk class. */
ServiceClassRegistry
twoClasses(double tight_slo, double loose_slo, double tight_weight = 1.0,
           double loose_weight = 1.0)
{
    ServiceClassRegistry reg;
    reg.add(makeClass("tight", tight_slo, 0, false, tight_weight));
    reg.add(makeClass("loose", loose_slo, 1, true, loose_weight));
    return reg;
}

// ---- Registry ---------------------------------------------------------

TEST(ServiceClassRegistry, IdsFollowInsertionOrder)
{
    ServiceClassRegistry reg;
    EXPECT_TRUE(reg.empty());
    EXPECT_EQ(reg.add(makeClass("a", 1.0, 0, false)), 0u);
    EXPECT_EQ(reg.add(makeClass("b", 2.0, 1, true)), 1u);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.byName("a"), 0u);
    EXPECT_EQ(reg.byName("b"), 1u);
    EXPECT_EQ(reg.at(1).name, "b");
    EXPECT_DOUBLE_EQ(reg.totalWeight(), 2.0);
}

TEST(ServiceClassRegistry, WeightedSamplingMatchesTheMix)
{
    ServiceClassRegistry reg;
    reg.add(makeClass("heavy", 1.0, 0, false, 3.0));
    reg.add(makeClass("light", 1.0, 1, false, 1.0));

    Rng rng(7);
    std::uint64_t counts[2] = {0, 0};
    const int draws = 40000;
    for (int i = 0; i < draws; ++i)
        ++counts[reg.sample(rng)];
    double heavy_frac = double(counts[0]) / draws;
    EXPECT_NEAR(heavy_frac, 0.75, 0.02);
}

TEST(ServiceClassRegistry, SamplingIsDeterministicInSeed)
{
    ServiceClassRegistry reg = twoClasses(1.0, 10.0);
    Rng a(21), b(21);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(reg.sample(a), reg.sample(b));
        EXPECT_EQ(reg.drawDemand(0, a), reg.drawDemand(0, b));
    }
}

TEST(ServiceClassDemand, FixedIsExact)
{
    ServiceClassRegistry reg;
    ServiceClass c = makeClass("fixed", 1.0, 0, false);
    c.shape = DemandShape::Fixed;
    c.meanDemand = 2.5;
    reg.add(c);
    Rng rng(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(reg.drawDemand(0, rng), 2.5);
}

TEST(ServiceClassDemand, LognormalHasTheConfiguredMean)
{
    ServiceClassRegistry reg;
    ServiceClass c = makeClass("ln", 1.0, 0, false);
    c.shape = DemandShape::Lognormal;
    c.meanDemand = 3.0;
    c.logSigma = 0.4;
    reg.add(c);
    Rng rng(11);
    double sum = 0.0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i)
        sum += reg.drawDemand(0, rng);
    EXPECT_NEAR(sum / draws, 3.0, 0.15);
}

TEST(ServiceClassDemand, ParetoHasTheConfiguredMeanAndHeavyTail)
{
    ServiceClassRegistry reg;
    ServiceClass c = makeClass("pareto", 1.0, 0, false);
    c.shape = DemandShape::Pareto;
    c.meanDemand = 2.0;
    c.paretoAlpha = 2.5;
    reg.add(c);
    Rng rng(13);
    double sum = 0.0, max_seen = 0.0;
    const int draws = 40000;
    for (int i = 0; i < draws; ++i) {
        double d = reg.drawDemand(0, rng);
        // Pareto(xm, alpha) support starts at xm = mean*(alpha-1)/alpha.
        EXPECT_GE(d, 2.0 * 1.5 / 2.5 - 1e-12);
        sum += d;
        max_seen = std::max(max_seen, d);
    }
    EXPECT_NEAR(sum / draws, 2.0, 0.15);
    EXPECT_GT(max_seen, 10.0); // the tail really is heavy
}

TEST(ServiceClassRegistry, ShapeNamesAreStable)
{
    EXPECT_STREQ(toString(DemandShape::Fixed), "fixed");
    EXPECT_STREQ(toString(DemandShape::Lognormal), "lognormal");
    EXPECT_STREQ(toString(DemandShape::Pareto), "pareto");
}

TEST(ServiceClassRegistry, SearchAnalyticsPairIsTheCanonicalMix)
{
    ServiceClassRegistry reg =
        ServiceClassRegistry::searchAnalyticsPair(2.0, 50.0);
    ASSERT_EQ(reg.size(), 2u);
    const ServiceClass &search = reg.at(reg.byName("search"));
    const ServiceClass &analytics = reg.at(reg.byName("analytics"));
    EXPECT_LT(search.sloMs, analytics.sloMs);
    EXPECT_EQ(search.priority, 0u);
    EXPECT_FALSE(search.sheddable);
    EXPECT_TRUE(analytics.sheddable);
    EXPECT_EQ(analytics.shape, DemandShape::Pareto);
    EXPECT_LT(search.batchTolerance, 0.5);
}

// ---- ClassRouter ------------------------------------------------------

TEST(ClassRouter, PartitionsBigAndLittleByMeasuredRate)
{
    ServiceClassRegistry reg = twoClasses(1.0, 100.0);
    // Core 1 and 2 are the fast ones; core 4 cannot serve at all.
    std::vector<double> rates{1.0, 4.0, 4.0, 1.0, 0.0};
    sim::ClassRouter router(reg, rates, sim::ClassRouterConfig{});
    EXPECT_EQ(router.bigCores(), (std::vector<std::size_t>{1, 2}));
    EXPECT_EQ(router.littleCores(), (std::vector<std::size_t>{0, 3}));
    EXPECT_TRUE(router.isHot(0));
    EXPECT_FALSE(router.isHot(1));
}

TEST(ClassRouter, PinsHotClassesToBigCoresAndLooseToLittle)
{
    ServiceClassRegistry reg = twoClasses(1.0, 100.0);
    std::vector<double> rates{1.0, 4.0, 4.0, 1.0};
    sim::ClassRouter router(reg, rates, sim::ClassRouterConfig{});
    queueing::EventEngine engine(4); // all queues idle

    // Without a trace the big-core reservation always holds.
    EXPECT_TRUE(router.reservedAt(0.0));
    std::size_t hot = router.route(0, 0.0, 1.0, engine, rates);
    EXPECT_TRUE(hot == 1 || hot == 2);
    std::size_t loose = router.route(1, 0.0, 1.0, engine, rates);
    EXPECT_TRUE(loose == 0 || loose == 3);
}

TEST(ClassRouter, BatchIntolerantClassCountsAsHot)
{
    ServiceClassRegistry reg;
    ServiceClass c = makeClass("fragile", 10.0, 3, false);
    c.batchTolerance = 0.2; // low tolerance => hot despite the tier
    reg.add(c);
    std::vector<double> rates{1.0, 4.0};
    sim::ClassRouter router(reg, rates, sim::ClassRouterConfig{});
    EXPECT_TRUE(router.isHot(0));
    queueing::EventEngine engine(2);
    EXPECT_EQ(router.route(0, 0.0, 1.0, engine, rates), 1u);
}

TEST(ClassRouter, HourAwareReservationFollowsTheTrace)
{
    ServiceClassRegistry reg = twoClasses(1.0, 100.0);
    std::vector<double> rates{1.0, 4.0, 4.0, 1.0};
    auto trace = queueing::DiurnalTrace::webSearchCluster();
    const double ms_per_hour = 10.0;
    sim::ClassRouter router(reg, rates, sim::ClassRouterConfig{}, &trace,
                            ms_per_hour);
    queueing::EventEngine engine(4);

    // 2pm plateau: reserved — loose traffic stays on the little cores.
    double peak = 14.0 * ms_per_hour;
    EXPECT_TRUE(router.reservedAt(peak));
    std::size_t at_peak = router.route(1, peak, 1.0, engine, rates);
    EXPECT_TRUE(at_peak == 0 || at_peak == 3);

    // 3am trough: the reservation lifts and the idle big cores (4x the
    // rate, so 1/4 the predicted latency) soak up loose traffic too.
    double trough = 3.0 * ms_per_hour;
    EXPECT_LT(trace.loadAt(3.0), 0.6);
    EXPECT_FALSE(router.reservedAt(trough));
    std::size_t at_trough = router.route(1, trough, 1.0, engine, rates);
    EXPECT_TRUE(at_trough == 1 || at_trough == 2);
}

TEST(ClassRouter, ShedsOnlySheddableClassesOverBudget)
{
    ServiceClassRegistry reg = twoClasses(0.01, 0.01); // SLO: 0.01 ms
    std::vector<double> rates{1.0, 1.0};
    sim::ClassRouterConfig cfg;
    cfg.shedFactor = 3.0;
    sim::ClassRouter router(reg, rates, cfg);
    queueing::EventEngine engine(2);

    // Idle queues, demand 1.0 at rate 1.0 => predicted 1 ms >> 0.03 ms.
    EXPECT_NE(router.route(0, 0.0, 1.0, engine, rates),
              queueing::EventEngine::shed); // tight class is never shed
    EXPECT_EQ(router.route(1, 0.0, 1.0, engine, rates),
              queueing::EventEngine::shed);

    // Admission is predicted-latency based, so a cheap request of the
    // same class is admitted again (self-correcting, not a latch).
    EXPECT_NE(router.route(1, 0.0, 0.005, engine, rates),
              queueing::EventEngine::shed);

    cfg.shedEnabled = false;
    sim::ClassRouter lenient(reg, rates, cfg);
    EXPECT_NE(lenient.route(1, 0.0, 1.0, engine, rates),
              queueing::EventEngine::shed);
}

// ---- Class-tagged dispatch --------------------------------------------

/** Two fast + two slow cores, flat rates (no mode dependence). */
sim::DispatchConfig
classDispatchConfig(double arrival_rate)
{
    sim::DispatchConfig cfg;
    cfg.rates = {sim::ModeRates::flat(4.0), sim::ModeRates::flat(4.0),
                 sim::ModeRates::flat(1.0), sim::ModeRates::flat(1.0)};
    cfg.requests = 20000;
    cfg.arrivalRatePerMs = arrival_rate;
    cfg.seed = 17;
    return cfg;
}

TEST(ClassDispatch, PerClassOutcomesPartitionTheStream)
{
    sim::DispatchConfig cfg = classDispatchConfig(3.0);
    cfg.classes = twoClasses(2.0, 50.0);
    cfg.policy = sim::PlacementPolicy::ClassAware;
    sim::DispatchOutcome out = sim::dispatchRequests(cfg);

    ASSERT_EQ(out.perClass.size(), 2u);
    EXPECT_EQ(out.perClass[0].name, "tight");
    EXPECT_EQ(out.perClass[1].name, "loose");
    std::uint64_t offered = 0;
    for (const sim::ClassOutcome &co : out.perClass) {
        offered += co.completed + co.shed;
        EXPECT_GE(co.sloAttainment, 0.0);
        EXPECT_LE(co.sloAttainment, 1.0);
        EXPECT_GT(co.completed, 0u);
        EXPECT_GE(co.tailMs, co.latencyMs.median);
    }
    EXPECT_EQ(offered, cfg.requests);
    EXPECT_EQ(out.perClass[0].shed, 0u); // tight class is not sheddable
    EXPECT_DOUBLE_EQ(out.perClass[0].sloTargetMs, 2.0);
    // Completions (not arrivals) drive the reported throughput.
    std::uint64_t completed =
        out.perClass[0].completed + out.perClass[1].completed;
    EXPECT_EQ(completed + out.totalShed, cfg.requests);
}

TEST(ClassDispatch, IsDeterministicInSeed)
{
    sim::DispatchConfig cfg = classDispatchConfig(3.0);
    cfg.classes = twoClasses(2.0, 50.0);
    cfg.policy = sim::PlacementPolicy::ClassAware;
    sim::DispatchOutcome a = sim::dispatchRequests(cfg);
    sim::DispatchOutcome b = sim::dispatchRequests(cfg);
    EXPECT_EQ(a.placed, b.placed);
    EXPECT_EQ(a.totalShed, b.totalShed);
    for (std::size_t k = 0; k < 2; ++k) {
        EXPECT_EQ(a.perClass[k].completed, b.perClass[k].completed);
        EXPECT_EQ(a.perClass[k].tailMs, b.perClass[k].tailMs);
        EXPECT_EQ(a.perClass[k].sloAttainment, b.perClass[k].sloAttainment);
    }
}

TEST(ClassDispatch, ClassAwareBeatsClassBlindRoundRobinOnTheTightTail)
{
    // The acceptance bar: same tagged stream, same cores; pinning the
    // tight class to the two fast cores (and keeping bulk off them) must
    // beat class-blind round-robin on the tight class's p99.
    sim::DispatchConfig cfg = classDispatchConfig(3.0);
    cfg.classes = twoClasses(2.0, 50.0);
    cfg.classRouting.shedEnabled = false; // pure placement comparison

    cfg.policy = sim::PlacementPolicy::RoundRobin;
    sim::DispatchOutcome blind = sim::dispatchRequests(cfg);
    cfg.policy = sim::PlacementPolicy::ClassAware;
    sim::DispatchOutcome aware = sim::dispatchRequests(cfg);

    ASSERT_EQ(blind.perClass.size(), 2u);
    ASSERT_EQ(aware.perClass.size(), 2u);
    EXPECT_EQ(blind.totalShed, 0u);
    EXPECT_EQ(aware.totalShed, 0u);
    EXPECT_LT(aware.perClass[0].latencyMs.p99,
              blind.perClass[0].latencyMs.p99);
    EXPECT_GT(aware.perClass[0].sloAttainment,
              blind.perClass[0].sloAttainment);
}

TEST(ClassDispatch, SheddingProtectsTheFleetUnderOverload)
{
    // 130% of capacity: without admission control every queue diverges.
    // With it, the sheddable bulk class is clipped while the tight class
    // keeps completing everything.
    sim::DispatchConfig cfg = classDispatchConfig(1.3 * 10.0);
    cfg.classes = twoClasses(2.0, 20.0);
    cfg.policy = sim::PlacementPolicy::ClassAware;
    sim::DispatchOutcome out = sim::dispatchRequests(cfg);

    EXPECT_GT(out.totalShed, 0u);
    EXPECT_EQ(out.perClass[0].shed, 0u);
    EXPECT_GT(out.perClass[1].shed, 0u);
    EXPECT_EQ(out.totalShed, out.perClass[1].shed);

    // Shed requests count against attainment: the loose class cannot
    // report a perfect SLO by dropping its queue.
    sim::DispatchConfig no_shed = cfg;
    no_shed.classRouting.shedEnabled = false;
    sim::DispatchOutcome kept = sim::dispatchRequests(no_shed);
    EXPECT_EQ(kept.totalShed, 0u);
    // Clipping bulk arrivals keeps the tight tail ahead of the unshed run.
    EXPECT_LE(out.perClass[0].latencyMs.p99,
              kept.perClass[0].latencyMs.p99);
}

TEST(ClassDispatch, TimelineCarriesPerClassCells)
{
    sim::DispatchConfig cfg = classDispatchConfig(3.0);
    cfg.classes = twoClasses(2.0, 50.0);
    cfg.policy = sim::PlacementPolicy::ClassAware;
    cfg.diurnalTrace = queueing::DiurnalTrace::webSearchCluster();
    cfg.msPerHour = 20.0;
    cfg.timelineBucketMs = 20.0;
    cfg.arrivalRatePerMs = 4.0; // peak rate
    cfg.requests = static_cast<std::uint64_t>(
        cfg.arrivalRatePerMs * cfg.diurnalTrace->meanLoad() * 24.0 *
        cfg.msPerHour);
    sim::DispatchOutcome out = sim::dispatchRequests(cfg);

    ASSERT_FALSE(out.timeline.empty());
    std::uint64_t cells = 0, sheds = 0;
    for (const sim::TimelineBucket &tb : out.timeline) {
        ASSERT_EQ(tb.perClass.size(), 2u);
        std::uint64_t in_bucket = 0;
        for (const sim::TimelineBucket::ClassCell &cell : tb.perClass) {
            in_bucket += cell.completions;
            sheds += cell.shed;
        }
        EXPECT_EQ(in_bucket, tb.completions); // classes partition buckets
        cells += in_bucket;
    }
    std::uint64_t completed =
        out.perClass[0].completed + out.perClass[1].completed;
    EXPECT_EQ(cells, completed);
    EXPECT_EQ(sheds, out.totalShed);
}

// ---- Per-class monitors in the SlackDriven ladder ---------------------

/** Mode-dependent rates so ladder decisions are visible in residency. */
sim::DispatchConfig
slackConfig()
{
    sim::DispatchConfig cfg;
    cfg.rates = {sim::ModeRates{2.0, 1.7, 2.4, 3.4},
                 sim::ModeRates{2.0, 1.7, 2.4, 3.4}};
    cfg.policy = sim::PlacementPolicy::LeastLoaded;
    cfg.requests = 20000;
    cfg.seed = 29;
    cfg.arrivalRatePerMs = 0.8 * 4.0;
    cfg.control.kind = sim::ModePolicyKind::SlackDriven;
    cfg.control.quantumMs = 0.5;
    return cfg;
}

TEST(ClassMonitors, TightestClassDrivesTheLadder)
{
    // All-loose mix: latencies sit far under every SLO, so the ladder
    // banks B-mode.
    sim::DispatchConfig loose = slackConfig();
    loose.classes = twoClasses(500.0, 1000.0, 1.0, 1.0);
    sim::DispatchOutcome relaxed = sim::dispatchRequests(loose);
    double bmode = 0.0;
    for (const sim::CoreModeStats &m : relaxed.modeStats)
        bmode += m.residencyMs[sim::modeIndex(StretchMode::BatchBoost)];
    EXPECT_GT(bmode, 0.0);
    EXPECT_EQ(relaxed.totalThrottleEngagements(), 0u);

    // Adding one tight class (10% of traffic) must flip the same fleet
    // into protection: its per-class monitor violates, escalates to
    // Q-mode, and orders co-runner throttling — even though 90% of the
    // stream is perfectly happy.
    sim::DispatchConfig mixed = slackConfig();
    mixed.classes = twoClasses(0.5, 1000.0, 0.1, 0.9);
    sim::DispatchOutcome guarded = sim::dispatchRequests(mixed);
    double qmode = 0.0;
    for (const sim::CoreModeStats &m : guarded.modeStats)
        qmode += m.residencyMs[sim::modeIndex(StretchMode::QosBoost)];
    EXPECT_GT(qmode, 0.0);
    EXPECT_GT(guarded.totalThrottleEngagements(), 0u);
    EXPECT_GT(guarded.totalThrottleMs(), 0.0);
}

TEST(ClassMonitors, PerClassLaddersAreDeterministic)
{
    sim::DispatchConfig cfg = slackConfig();
    cfg.classes = twoClasses(0.5, 1000.0, 0.1, 0.9);
    sim::DispatchOutcome a = sim::dispatchRequests(cfg);
    sim::DispatchOutcome b = sim::dispatchRequests(cfg);
    EXPECT_EQ(a.totalTransitions(), b.totalTransitions());
    EXPECT_EQ(a.totalThrottleMs(), b.totalThrottleMs());
    EXPECT_EQ(a.perClass[0].tailMs, b.perClass[0].tailMs);
}

} // namespace
} // namespace stretch

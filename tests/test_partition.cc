/**
 * @file
 * Unit tests for the partition limit/usage registers — the paper's core
 * hardware mechanism (Section IV-B).
 */

#include <gtest/gtest.h>

#include "core/partition.h"

namespace stretch
{
namespace
{

TEST(Partition, DefaultEqualSplit)
{
    PartitionedResource rob("ROB", 192);
    EXPECT_EQ(rob.limit(0), 96u);
    EXPECT_EQ(rob.limit(1), 96u);
    EXPECT_EQ(rob.total(), 192u);
    EXPECT_EQ(rob.mode(), ShareMode::Partitioned);
}

TEST(Partition, StaticLimitEnforced)
{
    PartitionedResource r("ROB", 8);
    r.configure(ShareMode::Partitioned, 3, 5);
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(r.canAllocate(0));
        r.allocate(0);
    }
    EXPECT_FALSE(r.canAllocate(0));
    // Thread 1 is unaffected.
    EXPECT_TRUE(r.canAllocate(1));
}

TEST(Partition, AsymmetricStretchSkew)
{
    PartitionedResource r("ROB", 192);
    r.configure(ShareMode::Partitioned, 56, 136);
    EXPECT_EQ(r.limit(0), 56u);
    EXPECT_EQ(r.limit(1), 136u);
    for (int i = 0; i < 136; ++i)
        r.allocate(1);
    EXPECT_FALSE(r.canAllocate(1));
    EXPECT_TRUE(r.canAllocate(0));
}

TEST(Partition, PrivateFullPerThread)
{
    // "Private" structures in the contention study: both threads may hold
    // the full capacity simultaneously.
    PartitionedResource r("ROB", 16);
    r.configure(ShareMode::Partitioned, 16, 16);
    for (int i = 0; i < 16; ++i) {
        r.allocate(0);
        r.allocate(1);
    }
    EXPECT_FALSE(r.canAllocate(0));
    EXPECT_FALSE(r.canAllocate(1));
    EXPECT_EQ(r.usage(0) + r.usage(1), 32u);
}

TEST(Partition, DynamicJointCap)
{
    PartitionedResource r("ROB", 8);
    r.configure(ShareMode::Dynamic, 8, 8);
    for (int i = 0; i < 6; ++i)
        r.allocate(0);
    r.allocate(1);
    r.allocate(1);
    // Pool exhausted: neither thread can allocate.
    EXPECT_FALSE(r.canAllocate(0));
    EXPECT_FALSE(r.canAllocate(1));
    r.release(0);
    EXPECT_TRUE(r.canAllocate(1));
}

TEST(Partition, DynamicWithPerThreadCap)
{
    PartitionedResource r("ROB", 8);
    r.configure(ShareMode::Dynamic, 2, 8);
    r.allocate(0);
    r.allocate(0);
    EXPECT_FALSE(r.canAllocate(0)); // own cap hit before joint cap
    EXPECT_TRUE(r.canAllocate(1));
}

TEST(Partition, ReleaseAll)
{
    PartitionedResource r("ROB", 8);
    r.allocate(0);
    r.allocate(0);
    r.allocate(1);
    r.releaseAll(0);
    EXPECT_EQ(r.usage(0), 0u);
    EXPECT_EQ(r.usage(1), 1u);
}

TEST(Partition, UsageTracksAllocateRelease)
{
    PartitionedResource r("LSQ", 64);
    r.allocate(0);
    r.allocate(0);
    EXPECT_EQ(r.usage(0), 2u);
    r.release(0);
    EXPECT_EQ(r.usage(0), 1u);
}

TEST(PartitionDeathTest, OverAllocatePanics)
{
    PartitionedResource r("ROB", 4);
    r.configure(ShareMode::Partitioned, 2, 2);
    r.allocate(0);
    r.allocate(0);
    EXPECT_DEATH(r.allocate(0), "allocate past limit");
}

TEST(PartitionDeathTest, UnderflowPanics)
{
    PartitionedResource r("ROB", 4);
    EXPECT_DEATH(r.release(0), "release below zero");
}

TEST(PartitionDeathTest, BadLimitsPanic)
{
    PartitionedResource r("ROB", 8);
    EXPECT_DEATH(r.configure(ShareMode::Partitioned, 0, 4), "starves");
    EXPECT_DEATH(r.configure(ShareMode::Partitioned, 9, 4), "exceeds");
}

} // namespace
} // namespace stretch

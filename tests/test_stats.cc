/**
 * @file
 * Unit tests for the stats module: running statistics, percentiles,
 * violin summaries, and the table printer.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "stats/summary.h"
#include "stats/table.h"

namespace stretch::stats
{
namespace
{

TEST(RunningStat, Basics)
{
    RunningStat rs;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        rs.add(v);
    EXPECT_EQ(rs.count(), 8u);
    EXPECT_NEAR(rs.mean(), 5.0, 1e-12);
    EXPECT_NEAR(rs.stddev(), 2.13809, 1e-4); // sample stddev
    EXPECT_EQ(rs.min(), 2.0);
    EXPECT_EQ(rs.max(), 9.0);
}

TEST(RunningStat, Empty)
{
    RunningStat rs;
    EXPECT_EQ(rs.mean(), 0.0);
    EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStat, SingleValue)
{
    RunningStat rs;
    rs.add(3.5);
    EXPECT_EQ(rs.mean(), 3.5);
    EXPECT_EQ(rs.variance(), 0.0);
}

TEST(Percentile, Interpolation)
{
    std::vector<double> v = {1, 2, 3, 4};
    EXPECT_NEAR(percentile(v, 0.0), 1.0, 1e-12);
    EXPECT_NEAR(percentile(v, 100.0), 4.0, 1e-12);
    EXPECT_NEAR(percentile(v, 50.0), 2.5, 1e-12);
    EXPECT_NEAR(percentile(v, 25.0), 1.75, 1e-12);
}

TEST(Percentile, UnsortedInput)
{
    std::vector<double> v = {9, 1, 5, 3, 7};
    EXPECT_NEAR(percentile(v, 50.0), 5.0, 1e-12);
}

TEST(Percentile, Empty)
{
    EXPECT_EQ(percentile({}, 50.0), 0.0);
}

TEST(Summarize, Quartiles)
{
    std::vector<double> v;
    for (int i = 1; i <= 101; ++i)
        v.push_back(i);
    ViolinSummary s = summarize(v);
    EXPECT_EQ(s.count, 101u);
    EXPECT_NEAR(s.min, 1.0, 1e-12);
    EXPECT_NEAR(s.max, 101.0, 1e-12);
    EXPECT_NEAR(s.median, 51.0, 1e-12);
    EXPECT_NEAR(s.q1, 26.0, 1e-12);
    EXPECT_NEAR(s.q3, 76.0, 1e-12);
    EXPECT_NEAR(s.mean, 51.0, 1e-12);
}

TEST(Summarize, TailPercentilesOrdered)
{
    std::vector<double> v;
    for (int i = 1; i <= 1000; ++i)
        v.push_back(i);
    ViolinSummary s = summarize(v);
    EXPECT_LE(s.p95, s.p99);
    EXPECT_LE(s.p99, s.p999);
    EXPECT_LE(s.p999, s.max);
    // Type-7 rank for p99.9 over 1..1000: 1 + 0.999 * 999 = 999.001.
    EXPECT_NEAR(s.p999, 999.001, 1e-9);
    EXPECT_NEAR(s.p95, 950.05, 1e-9);
}

TEST(Summarize, Empty)
{
    ViolinSummary s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.median, 0.0);
}

TEST(Mean, Simple)
{
    EXPECT_NEAR(mean({1.0, 2.0, 3.0}), 2.0, 1e-12);
    EXPECT_EQ(mean({}), 0.0);
}

TEST(Geomean, Simple)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({8.0}), 8.0, 1e-12);
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(Table, Formatting)
{
    Table t("demo");
    t.setHeader({"a", "bbbb"});
    t.addRow({"x", "1"});
    t.addRow({"yy", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("bbbb"), std::string::npos);
    EXPECT_NE(out.find("yy"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, NumAndPct)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::pct(0.131, 1), "+13.1%");
    EXPECT_EQ(Table::pct(-0.07, 1), "-7.0%");
}

TEST(Table, Csv)
{
    Table t("csv");
    t.setHeader({"name", "value"});
    t.addRow({"plain", "1"});
    t.addRow({"with,comma", "2"});
    t.addRow({"with\"quote", "3"});
    std::ostringstream os;
    t.printCsv(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name,value"), std::string::npos);
    EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

} // namespace
} // namespace stretch::stats

/**
 * @file
 * Cluster-layer tests: serial/parallel bit-identity over many seeds,
 * ingress policy behaviour (steering counts, migration, failover,
 * degradation avoidance), tail-merge exactness, rack scenario builder
 * validation, and the rack drill teeth pairing (JSQ(2) passes the
 * node-failure QoS assertions that blind round-robin misses).
 */

#include <cstdint>
#include <gtest/gtest.h>
#include <vector>

#include "cluster/cluster.h"
#include "scenario/presets.h"
#include "scenario/scenario.h"
#include "sim/fleet.h"
#include "stats/streaming_tail.h"
#include "util/rng.h"

namespace stretch
{
namespace
{

/** Small-but-real two-core node so cluster tests stay fast; the
 *  operating-point cache keeps remeasurement out of the loop. */
sim::FleetConfig
smallNode()
{
    sim::RunConfig core;
    core.workload0 = "web_search";
    core.workload1 = "zeusmp";
    core.samples = 2;
    core.warmupOps = 2000;
    core.measureOps = 5000;
    sim::FleetConfig node = sim::homogeneousFleet(2, core);
    node.requests = 2000;
    return node;
}

/** Four-node rack over the small node with bursty arrivals. */
cluster::ClusterConfig
smallRack(unsigned nodes = 4)
{
    cluster::ClusterConfig cfg =
        cluster::homogeneousCluster(nodes, smallNode());
    cfg.requests = 2000;
    cfg.burstRatio = 2.0;
    return cfg;
}

void
expectSameDispatch(const sim::DispatchOutcome &a, const sim::DispatchOutcome &b)
{
    EXPECT_EQ(a.latencyMs.count, b.latencyMs.count);
    EXPECT_EQ(a.latencyMs.mean, b.latencyMs.mean);
    EXPECT_EQ(a.latencyMs.p99, b.latencyMs.p99);
    EXPECT_EQ(a.latencyMs.p999, b.latencyMs.p999);
    EXPECT_EQ(a.latencyMs.max, b.latencyMs.max);
    EXPECT_EQ(a.placed, b.placed);
    EXPECT_EQ(a.totalShed, b.totalShed);
    EXPECT_EQ(a.throughputRps, b.throughputRps);
}

TEST(ClusterDeterminism, SerialAndParallelBitIdenticalAcrossSeeds)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        cluster::ClusterConfig serial = smallRack();
        serial.seed = seed;
        serial.threads = 1;
        cluster::ClusterConfig parallel = serial;
        parallel.threads = 4;

        cluster::ClusterResult a = cluster::runCluster(serial);
        cluster::ClusterResult b = cluster::runCluster(parallel);

        SCOPED_TRACE("seed " + std::to_string(seed));
        expectSameDispatch(a.merged.dispatch, b.merged.dispatch);
        ASSERT_EQ(a.nodes.size(), b.nodes.size());
        for (std::size_t j = 0; j < a.nodes.size(); ++j)
            expectSameDispatch(a.nodes[j].dispatch, b.nodes[j].dispatch);
        EXPECT_EQ(a.ingress.decisions, b.ingress.decisions);
        EXPECT_EQ(a.ingress.steered, b.ingress.steered);
        ASSERT_EQ(a.injected.size(), b.injected.size());
        for (std::size_t j = 0; j < a.injected.size(); ++j)
            EXPECT_EQ(a.injected[j].size(), b.injected[j].size());
    }
}

TEST(ClusterDeterminism, ExactTailsBitIdenticalAcrossNodeMerge)
{
    // Satellite check: with exact sort-based quantiles the merged
    // cluster tail pools per-node samples, so the merge must be
    // bit-identical however the nodes are scheduled.
    cluster::ClusterConfig serial = smallRack();
    serial.exactTailQuantiles = true;
    serial.threads = 1;
    cluster::ClusterConfig parallel = serial;
    parallel.threads = 4;

    cluster::ClusterResult a = cluster::runCluster(serial);
    cluster::ClusterResult b = cluster::runCluster(parallel);
    EXPECT_EQ(a.merged.dispatch.latencyMs.p99, b.merged.dispatch.latencyMs.p99);
    EXPECT_EQ(a.merged.dispatch.latencyMs.p999,
              b.merged.dispatch.latencyMs.p999);
    EXPECT_EQ(a.merged.dispatch.latencyMs.median,
              b.merged.dispatch.latencyMs.median);
}

TEST(ClusterMerge, StreamingTailNodeMergeMatchesSingleStream)
{
    // The merged cluster histogram is a bin-wise add of the per-node
    // histograms, so splitting one stream across "nodes" and merging
    // reproduces the single-stream quantiles exactly, not just within
    // a bin.
    Rng rng(7);
    stats::StreamingTail single;
    std::vector<stats::StreamingTail> perNode(4);
    for (int i = 0; i < 40000; ++i) {
        const double v = rng.lognormal(0.0, 1.2);
        single.record(v);
        perNode[static_cast<std::size_t>(i) % perNode.size()].record(v);
    }
    stats::StreamingTail merged;
    for (const stats::StreamingTail &t : perNode)
        merged.merge(t);

    EXPECT_EQ(merged.count(), single.count());
    // Partial sums accumulate in a different order, so the mean agrees
    // to rounding, not bit-for-bit.
    EXPECT_NEAR(merged.mean(), single.mean(), 1e-9 * single.mean());
    EXPECT_DOUBLE_EQ(merged.min(), single.min());
    EXPECT_DOUBLE_EQ(merged.max(), single.max());
    for (double pct : {50.0, 90.0, 99.0, 99.9})
        EXPECT_DOUBLE_EQ(merged.percentile(pct), single.percentile(pct));
}

TEST(ClusterMerge, MergedCountsCoverTheWholeStream)
{
    cluster::ClusterResult r = cluster::runCluster(smallRack());
    EXPECT_EQ(r.ingress.decisions, 2000u);
    std::uint64_t steered = 0, injected = 0;
    for (std::uint64_t s : r.ingress.steered)
        steered += s;
    for (const auto &list : r.injected)
        injected += list.size();
    EXPECT_EQ(steered, 2000u);
    EXPECT_EQ(injected, 2000u);
    EXPECT_EQ(r.merged.dispatch.latencyMs.count + r.merged.dispatch.totalShed,
              2000u);
    std::uint64_t nodeCompletions = 0;
    for (const sim::FleetResult &n : r.nodes)
        nodeCompletions += n.dispatch.latencyMs.count;
    EXPECT_EQ(r.merged.dispatch.latencyMs.count, nodeCompletions);
}

TEST(ClusterIngress, EveryPolicySteersTheFullStream)
{
    for (cluster::IngressPolicy policy :
         {cluster::IngressPolicy::RoundRobin, cluster::IngressPolicy::Jsq,
          cluster::IngressPolicy::FlowAffinity,
          cluster::IngressPolicy::ClassAware}) {
        cluster::ClusterConfig cfg = smallRack();
        cfg.classes = workloads::ServiceClassRegistry::searchAnalyticsPair(
            8.0, 80.0);
        cfg.ingress.policy = policy;

        cluster::ClusterResult r = cluster::runCluster(cfg);
        SCOPED_TRACE(cluster::toString(policy));
        EXPECT_EQ(r.ingress.decisions, cfg.requests);
        ASSERT_EQ(r.ingress.capacityPerMs.size(), cfg.nodes.size());
        for (double c : r.ingress.capacityPerMs)
            EXPECT_GT(c, 0.0);
        // FlowAffinity pins each class to a home node (two classes can
        // legitimately leave nodes idle); the load-blind and load-aware
        // policies spread over every node.
        std::uint64_t total = 0, nodesServing = 0;
        for (std::uint64_t s : r.ingress.steered) {
            total += s;
            nodesServing += s > 0 ? 1 : 0;
            if (policy != cluster::IngressPolicy::FlowAffinity)
                EXPECT_GT(s, cfg.requests / 20);
        }
        EXPECT_EQ(total, cfg.requests);
        EXPECT_GE(nodesServing, 2u); // >= one home node per class
        EXPECT_GT(r.merged.dispatch.latencyMs.count, 0u);
    }
}

TEST(ClusterIngress, RoundRobinIgnoresLoadExactly)
{
    cluster::ClusterConfig cfg = smallRack();
    cfg.ingress.policy = cluster::IngressPolicy::RoundRobin;
    cluster::ClusterResult r = cluster::runCluster(cfg);
    for (std::uint64_t s : r.ingress.steered)
        EXPECT_EQ(s, cfg.requests / cfg.nodes.size());
}

TEST(ClusterIngress, NodeFailureReSteersAndStopsRouting)
{
    cluster::ClusterConfig cfg = smallRack();
    const double failAt = 100.0;
    cfg.actions.push_back({cluster::NodeAction::Kind::NodeFail, failAt, 3, 0});

    cluster::ClusterResult r = cluster::runCluster(cfg);
    // Nothing lands on the dead node after the failure instant.
    for (const sim::InjectedArrival &a : r.injected[3])
        EXPECT_LE(a.atMs, failAt);
    // The dead node serves far less than the survivors.
    for (std::size_t j = 0; j < 3; ++j)
        EXPECT_GT(r.ingress.steered[j], 2 * r.ingress.steered[3]);
    // The whole stream still completes (or is accounted as shed).
    EXPECT_EQ(r.merged.dispatch.latencyMs.count + r.merged.dispatch.totalShed,
              cfg.requests);
}

TEST(ClusterIngress, JsqAvoidsADegradedNode)
{
    cluster::ClusterConfig cfg = smallRack();
    cfg.actions.push_back(
        {cluster::NodeAction::Kind::NodeDegrade, 0.0, 1, 0.25});

    cluster::ClusterResult r = cluster::runCluster(cfg);
    // Load-aware steering starves the slow node relative to every
    // healthy peer; blind round-robin would keep feeding it.
    for (std::size_t j : {std::size_t(0), std::size_t(2), std::size_t(3)})
        EXPECT_GT(r.ingress.steered[j], r.ingress.steered[1]);

    cluster::ClusterConfig rr = cfg;
    rr.ingress.policy = cluster::IngressPolicy::RoundRobin;
    cluster::ClusterResult blind = cluster::runCluster(rr);
    EXPECT_EQ(blind.ingress.steered[1], cfg.requests / cfg.nodes.size());
    EXPECT_GT(blind.merged.dispatch.latencyMs.p99,
              r.merged.dispatch.latencyMs.p99);
}

TEST(ClusterIngress, MigrationDrainsStragglersOffAHotNode)
{
    // Round-robin + a crippled node builds a queue the migrator must
    // drain; with migration off the same setup reports none.
    cluster::ClusterConfig cfg = smallRack();
    cfg.ingress.policy = cluster::IngressPolicy::RoundRobin;
    cfg.ingress.migrateSojournMs = 5.0;
    cfg.actions.push_back(
        {cluster::NodeAction::Kind::NodeDegrade, 0.0, 0, 0.2});

    cluster::ClusterResult withMigration = cluster::runCluster(cfg);
    EXPECT_GT(withMigration.ingress.migrations, 0u);

    cfg.ingress.migrateSojournMs = 0.0;
    cluster::ClusterResult without = cluster::runCluster(cfg);
    EXPECT_EQ(without.ingress.migrations, 0u);
}

TEST(ClusterConfigTest, HomogeneousClusterDecorrelatesNodeSeeds)
{
    sim::FleetConfig node = smallNode();
    cluster::ClusterConfig cfg = cluster::homogeneousCluster(4, node);
    ASSERT_EQ(cfg.nodes.size(), 4u);
    for (std::size_t j = 0; j < cfg.nodes.size(); ++j) {
        // Dispatch seeds decorrelate; the microarchitectural core
        // configs stay identical so the op-point cache stays hot.
        for (std::size_t k = j + 1; k < cfg.nodes.size(); ++k)
            EXPECT_NE(cfg.nodes[j].seed, cfg.nodes[k].seed);
        ASSERT_EQ(cfg.nodes[j].cores.size(), node.cores.size());
        for (std::size_t c = 0; c < node.cores.size(); ++c) {
            EXPECT_EQ(cfg.nodes[j].cores[c].workload0,
                      node.cores[c].workload0);
            EXPECT_EQ(cfg.nodes[j].cores[c].seed, node.cores[c].seed);
        }
    }
}

// ---------------------------------------------------------- scenario layer

scenario::ScenarioBuilder
rackBuilder()
{
    sim::RunConfig core;
    core.workload0 = "web_search";
    core.workload1 = "zeusmp";
    core.samples = 2;
    core.warmupOps = 2000;
    core.measureOps = 5000;
    return scenario::ScenarioBuilder()
        .name("rack-test")
        .cores(2, core)
        .nodes(4)
        .requests(2000)
        .meanLoad(0.5);
}

bool
anyErrorMentions(const scenario::BuildResult &r, const std::string &needle)
{
    for (const std::string &e : r.errors)
        if (e.find(needle) != std::string::npos)
            return true;
    return false;
}

TEST(RackValidation, ZeroNodesIsRejected)
{
    scenario::BuildResult r = rackBuilder().nodes(0).tryBuild();
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(anyErrorMentions(r, "nodes(0)")) << r.errorText();
}

TEST(RackValidation, DiurnalReplayIsRejectedOnRacks)
{
    scenario::BuildResult r =
        rackBuilder().diurnal(queueing::DiurnalTrace::webSearchCluster(), 50.0).tryBuild();
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(anyErrorMentions(r, "diurnal")) << r.errorText();
}

TEST(RackValidation, SingleNodeIncidentsAreRejectedOnRacks)
{
    scenario::BuildResult r =
        rackBuilder()
            .incident(scenario::CoreFailure{0, 0.5})
            .tryBuild();
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(anyErrorMentions(r, "not supported in rack scenarios"))
        << r.errorText();
}

TEST(RackValidation, NodeIncidentsNeedARack)
{
    scenario::BuildResult r =
        rackBuilder()
            .nodes(1)
            .incident(scenario::NodeFailure{0, 0.5})
            .tryBuild();
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(anyErrorMentions(r, "needs a rack scenario"))
        << r.errorText();
}

TEST(RackValidation, NodeIncidentsMustTargetARealNode)
{
    scenario::BuildResult r =
        rackBuilder().incident(scenario::NodeFailure{4, 0.5}).tryBuild();
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(anyErrorMentions(r, "targets node 4")) << r.errorText();
}

TEST(RackValidation, FailingEveryNodeIsRejected)
{
    scenario::ScenarioBuilder b = rackBuilder();
    for (std::size_t j = 0; j < 4; ++j)
        b.incident(scenario::NodeFailure{j, 0.5});
    scenario::BuildResult r = b.tryBuild();
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(anyErrorMentions(r, "at least one node must survive"))
        << r.errorText();
}

TEST(RackScenario, RunRoutesRacksThroughTheClusterLayer)
{
    scenario::Scenario s = rackBuilder().expect();
    sim::FleetResult merged = scenario::run(s);
    EXPECT_EQ(merged.dispatch.latencyMs.count + merged.dispatch.totalShed,
              2000u);
    // Rack lowering scales the stream across nodes: 4 nodes of the
    // 2-core config, concatenated in the merged core view.
    EXPECT_EQ(merged.cores.size(), 8u);
}

// ------------------------------------------------------------ drill teeth

TEST(RackTeeth, JsqPassesNodeFailureDrillRoundRobinFails)
{
    // The ISSUE acceptance pairing: after a mid-run node failure the
    // preset's JSQ(2) ingress passes the drill's p99 + attainment
    // assertions, while the same drill steered blind round-robin
    // fails — specifically on the windowed p99 bound (liveness is
    // known to both policies; load-awareness is the difference).
    const scenario::Drill &d = scenario::drill("rack/node-failure");
    scenario::DrillOutcome jsq = scenario::runDrill(d);
    EXPECT_TRUE(jsq.pass);
    for (const scenario::AssertionResult &a : jsq.assertions)
        EXPECT_TRUE(a.pass) << a.detail;

    scenario::DrillOutcome blind =
        scenario::runDrill(d, [](scenario::Scenario &s) {
            s.ingress.policy = cluster::IngressPolicy::RoundRobin;
        });
    EXPECT_FALSE(blind.pass);
    ASSERT_EQ(blind.assertions.size(), 2u);
    EXPECT_FALSE(blind.assertions[0].pass) << blind.assertions[0].detail;
}

TEST(RackTeeth, DegradationDrillNeedsLoadAwareSteering)
{
    // Same pairing on the degradation drill: round-robin keeps feeding
    // the slow node, blowing both the windowed bound and the recovery
    // allowance.
    const scenario::Drill &d = scenario::drill("rack/node-degradation");
    scenario::DrillOutcome blind =
        scenario::runDrill(d, [](scenario::Scenario &s) {
            s.ingress.policy = cluster::IngressPolicy::RoundRobin;
        });
    EXPECT_FALSE(blind.pass);
}

} // namespace
} // namespace stretch

/**
 * @file
 * Integration tests: end-to-end checks that the paper's qualitative
 * results hold on the assembled system — the direction and rough size of
 * every headline effect, on representative workload pairs.
 */

#include <gtest/gtest.h>

#include "qos/cpi2_monitor.h"
#include "qos/stretch_controller.h"
#include "queueing/load_study.h"
#include "sim/runner.h"
#include "workload/profiles.h"

namespace stretch
{
namespace
{

sim::RunConfig
cfg(const std::string &ls, const std::string &batch)
{
    sim::RunConfig c;
    c.samples = 2;
    c.warmupOps = 4000;
    c.warmupCycles = 25000;
    c.measureOps = 12000;
    c.workload0 = ls;
    c.workload1 = batch;
    return c;
}

TEST(Integration, ColocationSlowsBothSides)
{
    auto c = cfg("web_search", "zeusmp");
    sim::RunResult co = sim::run(c);
    double iso_ls = sim::runIsolated("web_search", c).uipc[0];
    double iso_b = sim::runIsolated("zeusmp", c).uipc[0];
    EXPECT_LT(co.uipc[0], iso_ls);
    EXPECT_LT(co.uipc[1], iso_b);
    // Batch (ROB-hungry) suffers more than the LS thread (Section III-A).
    double ls_slow = 1 - co.uipc[0] / iso_ls;
    double b_slow = 1 - co.uipc[1] / iso_b;
    EXPECT_GT(b_slow, ls_slow);
}

TEST(Integration, BModeTradesLsForBatch)
{
    auto c = cfg("web_search", "zeusmp");
    sim::RunResult base = sim::run(c);
    c.rob.kind = sim::RobConfigKind::Asymmetric;
    c.rob.limit0 = 56;
    c.rob.limit1 = 136;
    sim::RunResult bmode = sim::run(c);
    double batch_gain = bmode.uipc[1] / base.uipc[1] - 1.0;
    double ls_loss = 1.0 - bmode.uipc[0] / base.uipc[0];
    EXPECT_GT(batch_gain, 0.05);  // headline: +13% avg, zeusmp above avg
    EXPECT_LT(ls_loss, 0.20);     // bounded LS cost (paper: ~7%)
    EXPECT_GT(batch_gain, ls_loss * 0.5);
}

TEST(Integration, DeeperSkewGivesMoreBatchGain)
{
    auto c = cfg("media_streaming", "GemsFDTD");
    sim::RunResult base = sim::run(c);
    c.rob.kind = sim::RobConfigKind::Asymmetric;
    c.rob.limit0 = 56;
    c.rob.limit1 = 136;
    double g136 = sim::run(c).uipc[1] / base.uipc[1];
    c.rob.limit0 = 32;
    c.rob.limit1 = 160;
    double g160 = sim::run(c).uipc[1] / base.uipc[1];
    EXPECT_GT(g160, g136);
}

TEST(Integration, QModeBoostsLsAtBatchCost)
{
    auto c = cfg("data_serving", "zeusmp");
    sim::RunResult base = sim::run(c);
    c.rob.kind = sim::RobConfigKind::Asymmetric;
    c.rob.limit0 = 136;
    c.rob.limit1 = 56;
    sim::RunResult qmode = sim::run(c);
    EXPECT_GE(qmode.uipc[0], base.uipc[0] * 0.99);
    EXPECT_LT(qmode.uipc[1], base.uipc[1]);
}

TEST(Integration, InsensitiveBatchGainsLittleFromBMode)
{
    // gobmk barely uses the window; B-mode should move it only slightly.
    auto c = cfg("web_search", "gobmk");
    sim::RunResult base = sim::run(c);
    c.rob.kind = sim::RobConfigKind::Asymmetric;
    c.rob.limit0 = 56;
    c.rob.limit1 = 136;
    sim::RunResult bmode = sim::run(c);
    double gain = bmode.uipc[1] / base.uipc[1] - 1.0;
    EXPECT_LT(gain, 0.10);
    EXPECT_GT(gain, -0.05);
}

TEST(Integration, FetchThrottlingHurtsLsMoreThanItHelpsBatch)
{
    auto c = cfg("web_search", "zeusmp");
    sim::RunResult base = sim::run(c);
    c.rob.kind = sim::RobConfigKind::DynamicShared;
    c.fetchPolicy = FetchPolicy::Throttle;
    c.throttleRatio = 16;
    c.throttledThread = 0;
    sim::RunResult ft = sim::run(c);
    double ls_loss = 1.0 - ft.uipc[0] / base.uipc[0];
    double batch_gain = ft.uipc[1] / base.uipc[1] - 1.0;
    EXPECT_GT(ls_loss, 0.30); // paper: -68% at 1:16
    EXPECT_LT(batch_gain, ls_loss); // poor trade, unlike Stretch
}

TEST(Integration, StretchBeatsIdealSoftwareSchedulingForRobHungryApps)
{
    auto c = cfg("web_search", "leslie3d");
    sim::RunResult base = sim::run(c);
    // Ideal software scheduling: contention-free shared structures.
    auto sw = c;
    sw.shareL1i = false;
    sw.shareL1d = false;
    sw.shareBp = false;
    sim::RunResult ideal = sim::run(sw);
    // Stretch B-mode on the real shared core.
    auto st = c;
    st.rob.kind = sim::RobConfigKind::Asymmetric;
    st.rob.limit0 = 56;
    st.rob.limit1 = 136;
    sim::RunResult stretch = sim::run(st);
    double sw_gain = ideal.uipc[1] / base.uipc[1] - 1.0;
    double stretch_gain = stretch.uipc[1] / base.uipc[1] - 1.0;
    EXPECT_GT(stretch_gain, sw_gain); // Section VI-C, for ROB-bound apps
    // And the two combine additively (within tolerance).
    auto both = sw;
    both.rob.kind = sim::RobConfigKind::Asymmetric;
    both.rob.limit0 = 56;
    both.rob.limit1 = 136;
    sim::RunResult combined = sim::run(both);
    double combined_gain = combined.uipc[1] / base.uipc[1] - 1.0;
    EXPECT_GT(combined_gain, stretch_gain);
}

TEST(Integration, SlackAbsorbsColocationSlowdownAtLowLoad)
{
    // Connect the two substrates: the measured B-mode LS slowdown must be
    // tolerable at 30% load per the queueing model.
    auto c = cfg("web_search", "zeusmp");
    double iso = sim::runIsolated("web_search", c).uipc[0];
    c.rob.kind = sim::RobConfigKind::Asymmetric;
    c.rob.limit0 = 56;
    c.rob.limit1 = 136;
    sim::RunResult bmode = sim::run(c);
    double slowdown_factor = iso / bmode.uipc[0];

    using namespace queueing;
    const ServiceSpec &spec = serviceSpec("web_search");
    StudyKnobs knobs;
    knobs.requests = 15000;
    double peak = peakLoadRate(spec, knobs);
    double tolerable = tolerableSlowdown(spec, peak, 0.3, 16.0, knobs);
    EXPECT_GT(tolerable, slowdown_factor);
}

TEST(Integration, MonitorDrivesControllerOnLoadSwing)
{
    // Synthetic day: low load -> B-mode; spike -> Q-mode/baseline; the
    // controller reprograms the partition registers accordingly.
    HierarchyConfig hcfg;
    hcfg.llcWayPartition = {8, 8};
    MemoryHierarchy mem(hcfg);
    BranchUnit bp;
    SmtCore core(CoreParams{}, mem, bp);
    StretchController ctl(core, 0);
    MonitorConfig mc;
    mc.qosTarget = 100.0;
    mc.windowRequests = 4;
    Cpi2Monitor mon(mc);

    auto step = [&](double tail) {
        MonitorDecision d = mon.evaluateTail(tail);
        ctl.engage(d.mode);
        return d;
    };
    step(20.0);
    EXPECT_EQ(ctl.mode(), StretchMode::BatchBoost);
    EXPECT_EQ(core.rob().limit(1), 136u);
    step(120.0);
    EXPECT_EQ(ctl.mode(), StretchMode::QosBoost);
    EXPECT_EQ(core.rob().limit(0), 136u);
    step(70.0);
    step(20.0);
    EXPECT_EQ(ctl.mode(), StretchMode::BatchBoost);
    EXPECT_GE(ctl.modeChanges(), 3u);
}

TEST(Integration, MatchedSamplingAcrossCoRunners)
{
    // Section V-C: the same sampling points are used across colocations —
    // the LS thread's instruction stream must be identical regardless of
    // the co-runner (verified indirectly: isolated runs of the same seed
    // are bit-identical, and colocation only changes timing, not streams).
    auto c1 = cfg("web_search", "gamess");
    auto c2 = cfg("web_search", "lbm");
    sim::RunResult a = sim::run(c1);
    sim::RunResult b = sim::run(c2);
    // Both colocations retire (at least) the same matched sample quota on
    // the LS thread — the streams are identical, only timing differs.
    std::uint64_t quota = 2 * 12000;
    EXPECT_GE(a.stats[0].committedOps, quota);
    EXPECT_GE(b.stats[0].committedOps, quota);
    EXPECT_NE(a.totalCycles, b.totalCycles);
}

} // namespace
} // namespace stretch

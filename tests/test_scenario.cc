/**
 * @file
 * Scenario-layer tests: builder validation (every rejection actionable
 * and accumulated), lowering equivalence with hand-built FleetConfigs
 * (bit-identical, including the shared-stream two-class case), probe
 * calibration of relative quantities, and Sweep's cartesian expansion.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "scenario/scenario.h"
#include "sim/op_point_cache.h"

namespace stretch::scenario
{
namespace
{

/** Small-but-real colocation config so scenario tests stay fast. */
sim::RunConfig
smallConfig()
{
    sim::RunConfig cfg;
    cfg.workload0 = "web_search";
    cfg.workload1 = "zeusmp";
    cfg.samples = 2;
    cfg.warmupOps = 2000;
    cfg.measureOps = 5000;
    return cfg;
}

bool
anyErrorContains(const BuildResult &r, const std::string &needle)
{
    return std::any_of(r.errors.begin(), r.errors.end(),
                       [&](const std::string &e) {
                           return e.find(needle) != std::string::npos;
                       });
}

TEST(ScenarioBuilder, RejectsEmptyTopology)
{
    BuildResult r = ScenarioBuilder().tryBuild();
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(anyErrorContains(r, "topology is empty"));
    EXPECT_TRUE(anyErrorContains(r, "cores(")); // actionable: names the fix
}

TEST(ScenarioBuilder, RejectsNonPositiveSlo)
{
    workloads::ServiceClass bad;
    bad.name = "broken";
    bad.sloMs = 0.0;
    BuildResult r = ScenarioBuilder()
                        .cores(2, smallConfig())
                        .serviceClass(bad)
                        .tryBuild();
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(anyErrorContains(r, "SLO <= 0"));
    EXPECT_TRUE(anyErrorContains(r, "'broken'")); // names the class
}

TEST(ScenarioBuilder, RejectsZeroWeightSum)
{
    workloads::ServiceClass a;
    a.name = "a";
    a.weight = 0.0;
    workloads::ServiceClass b;
    b.name = "b";
    b.weight = 0.0;
    BuildResult r = ScenarioBuilder()
                        .cores(1, smallConfig())
                        .serviceClass(a)
                        .serviceClass(b)
                        .tryBuild();
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(anyErrorContains(r, "class weights sum to 0"));
}

TEST(ScenarioBuilder, RejectsClassAwarePlacementWithoutClasses)
{
    BuildResult r = ScenarioBuilder()
                        .cores(2, smallConfig())
                        .placement(sim::PlacementPolicy::ClassAware)
                        .tryBuild();
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(anyErrorContains(r, "class-aware placement"));
}

TEST(ScenarioBuilder, RejectsConflictingRateSpecs)
{
    BuildResult r = ScenarioBuilder()
                        .cores(1, smallConfig())
                        .arrivalRate(2.0)
                        .meanLoad(0.7)
                        .tryBuild();
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(anyErrorContains(r, "one rate specification"));
}

TEST(ScenarioBuilder, RejectsDayStreamAndHourlyTimelineWithoutTrace)
{
    BuildResult r = ScenarioBuilder()
                        .cores(1, smallConfig())
                        .dayLongStream()
                        .hourlyTimeline()
                        .tryBuild();
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(anyErrorContains(r, "dayLongStream"));
    EXPECT_TRUE(anyErrorContains(r, "hourlyTimeline"));
}

TEST(ScenarioBuilder, RejectsDisabledPerClassArrivalsWithCustomTraffic)
{
    workloads::ServiceClass cls;
    cls.name = "bursty";
    cls.traffic.burstRatio = 4.0;
    BuildResult r = ScenarioBuilder()
                        .cores(1, smallConfig())
                        .serviceClass(cls)
                        .perClassArrivals(false)
                        .tryBuild();
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(anyErrorContains(r, "explicitly disabled"));
}

TEST(ScenarioBuilder, AccumulatesEveryViolation)
{
    workloads::ServiceClass bad;
    bad.name = "";
    bad.sloMs = -1.0;
    BuildResult r = ScenarioBuilder()
                        .serviceClass(bad) // no name, bad SLO
                        .burstiness(0.5)   // ratio < 1
                        .tryBuild();       // and no topology
    ASSERT_FALSE(r.ok());
    EXPECT_GE(r.errors.size(), 4u); // all reported, not die-on-first
    EXPECT_NE(r.errorText().find(";"), std::string::npos);
}

TEST(ScenarioBuilder, AutoEnablesPerClassArrivalsOnCustomTraffic)
{
    workloads::ServiceClass plain;
    plain.name = "plain";
    workloads::ServiceClass shifted = plain;
    shifted.name = "shifted";
    shifted.traffic.phaseOffsetHours = 6.0;

    Scenario no_custom = ScenarioBuilder()
                             .cores(1, smallConfig())
                             .serviceClass(plain)
                             .expect();
    EXPECT_FALSE(no_custom.perClassArrivals);

    Scenario custom = ScenarioBuilder()
                          .cores(1, smallConfig())
                          .serviceClass(plain)
                          .serviceClass(shifted)
                          .expect();
    EXPECT_TRUE(custom.perClassArrivals);
}

TEST(ScenarioBuilder, ExplicitSeedSurvivesCoresCall)
{
    // cores(n, base) adopts base.seed for the dispatch streams, but an
    // explicit seed() wins regardless of call order.
    Scenario adopted = ScenarioBuilder().cores(2, smallConfig()).expect();
    EXPECT_EQ(adopted.seed, smallConfig().seed);

    Scenario pinned_before =
        ScenarioBuilder().seed(7).cores(2, smallConfig()).expect();
    EXPECT_EQ(pinned_before.seed, 7u);

    Scenario pinned_after =
        ScenarioBuilder().cores(2, smallConfig()).seed(7).expect();
    EXPECT_EQ(pinned_after.seed, 7u);
}

TEST(ScenarioLowering, MatchesHandBuiltFleetConfigBitIdentically)
{
    sim::RunConfig base = smallConfig();

    Scenario s = ScenarioBuilder()
                     .cores(2, base)
                     .requests(2000)
                     .burstiness(3.0)
                     .placement(sim::PlacementPolicy::PowerOfTwo)
                     .expect();
    sim::FleetResult via_scenario = run(s);

    sim::FleetConfig hand = sim::homogeneousFleet(2, base);
    hand.requests = 2000;
    hand.burstRatio = 3.0;
    hand.policy = sim::PlacementPolicy::PowerOfTwo;
    sim::FleetResult via_hand = sim::runFleet(hand);

    // Bit-identical, not approximate: the scenario layer is sugar over
    // the same lowering, not a second engine.
    ASSERT_EQ(via_scenario.cores.size(), via_hand.cores.size());
    for (std::size_t i = 0; i < via_hand.cores.size(); ++i)
        EXPECT_EQ(via_scenario.cores[i].uipc[0], via_hand.cores[i].uipc[0]);
    EXPECT_EQ(via_scenario.dispatch.latencyMs.p99,
              via_hand.dispatch.latencyMs.p99);
    EXPECT_EQ(via_scenario.dispatch.placed, via_hand.dispatch.placed);
    EXPECT_EQ(via_scenario.dispatch.throughputRps,
              via_hand.dispatch.throughputRps);
}

TEST(ScenarioLowering, TwoClassSharedStreamIsBitIdenticalToFleetWide)
{
    // The tentpole acceptance: a two-class scenario whose classes do NOT
    // customise their traffic lowers to the fleet-wide shared stream —
    // bit-identical to the hand-built class-tagged dispatch.
    sim::RunConfig base = smallConfig();
    workloads::ServiceClassRegistry reg =
        workloads::ServiceClassRegistry::searchAnalyticsPair(6.0, 75.0);

    Scenario s = ScenarioBuilder()
                     .cores(2, base)
                     .requests(3000)
                     .serviceClasses(reg)
                     .expect();
    EXPECT_FALSE(s.perClassArrivals); // both classes share one process
    sim::FleetResult via_scenario = run(s);

    sim::FleetConfig hand = sim::homogeneousFleet(2, base);
    hand.requests = 3000;
    hand.classes = reg;
    sim::FleetResult via_hand = sim::runFleet(hand);

    ASSERT_EQ(via_scenario.dispatch.perClass.size(), 2u);
    for (std::size_t k = 0; k < 2; ++k) {
        EXPECT_EQ(via_scenario.dispatch.perClass[k].completed,
                  via_hand.dispatch.perClass[k].completed);
        EXPECT_EQ(via_scenario.dispatch.perClass[k].latencyMs.p99,
                  via_hand.dispatch.perClass[k].latencyMs.p99);
        EXPECT_EQ(via_scenario.dispatch.perClass[k].sloAttainment,
                  via_hand.dispatch.perClass[k].sloAttainment);
    }
    EXPECT_EQ(via_scenario.dispatch.latencyMs.p999,
              via_hand.dispatch.latencyMs.p999);

    // Flip one class onto its own process: the per-class timeline must
    // now differ from the shared stream (the phase/burst shape is real).
    Scenario split = s;
    split.perClassArrivals = true;
    split.classes.classAt(1).traffic.burstRatio = 6.0;
    sim::FleetResult bursty = run(split);
    EXPECT_NE(bursty.dispatch.perClass[1].latencyMs.p99,
              via_hand.dispatch.perClass[1].latencyMs.p99);
}

TEST(ScenarioCalibration, ResolvesLoadFractionsAndQosTarget)
{
    sim::RunConfig base = smallConfig();

    // Flat mean load: arrival rate = fraction x measured capacity.
    Scenario flat = ScenarioBuilder()
                        .cores(2, base)
                        .requests(500)
                        .meanLoad(0.5)
                        .modePolicy(sim::ModePolicyKind::SlackDriven)
                        .qosTargetFactor(4.0)
                        .expect();
    EXPECT_TRUE(flat.needsCalibration());
    sim::FleetConfig lowered = lower(flat);

    sim::FleetConfig probe = sim::homogeneousFleet(2, base);
    probe.requests = flat.calibrationRequests;
    sim::FleetResult probe_result = sim::runFleet(probe);
    double capacity = 0.0;
    for (double r : probe_result.serviceRatePerMs)
        capacity += r;

    EXPECT_DOUBLE_EQ(lowered.arrivalRatePerMs, 0.5 * capacity);
    EXPECT_DOUBLE_EQ(lowered.modeControl.monitor.qosTarget,
                     4.0 * probe_result.dispatch.latencyMs.p99);

    // Under a trace the mean-load target divides by the trace mean, and
    // the day-long stream sizes itself from the resolved peak.
    queueing::DiurnalTrace trace = queueing::DiurnalTrace::webSearchCluster();
    Scenario day = ScenarioBuilder()
                       .cores(2, base)
                       .diurnal(trace, 20.0)
                       .meanLoad(0.5)
                       .dayLongStream()
                       .expect();
    sim::FleetConfig day_cfg = lower(day);
    EXPECT_DOUBLE_EQ(day_cfg.arrivalRatePerMs,
                     0.5 * capacity / trace.meanLoad());
    EXPECT_EQ(day_cfg.requests,
              static_cast<std::uint64_t>(day_cfg.arrivalRatePerMs *
                                         trace.meanLoad() * 24.0 * 20.0));

    // Peak-load fraction pins the peak rate directly.
    Scenario peak = ScenarioBuilder()
                        .cores(2, base)
                        .diurnal(trace, 20.0)
                        .peakLoad(1.1)
                        .expect();
    EXPECT_DOUBLE_EQ(lower(peak).arrivalRatePerMs, 1.1 * capacity);
}

TEST(ScenarioSweep, ExpandsTheCartesianProductWithLabels)
{
    Scenario base = ScenarioBuilder()
                        .cores(1, smallConfig())
                        .requests(0)
                        .expect();

    Sweep sweep(base);
    sweep.over("policy",
               {{"rr",
                 [](Scenario &s) {
                     s.placement = sim::PlacementPolicy::RoundRobin;
                 }},
                {"qos",
                 [](Scenario &s) {
                     s.placement = sim::PlacementPolicy::QosAware;
                 }}})
        .over("load", {{"70%", [](Scenario &s) { s.meanLoadFraction = 0.7; }},
                       {"90%", [](Scenario &s) { s.meanLoadFraction = 0.9; }},
                       {"110%",
                        [](Scenario &s) { s.meanLoadFraction = 1.1; }}});

    std::vector<Sweep::Variant> vars = sweep.variants();
    ASSERT_EQ(vars.size(), 6u); // 2 x 3, last axis fastest
    EXPECT_EQ(vars[0].label, "policy=rr, load=70%");
    EXPECT_EQ(vars[1].label, "policy=rr, load=90%");
    EXPECT_EQ(vars[3].label, "policy=qos, load=70%");
    EXPECT_EQ(vars[5].label, "policy=qos, load=110%");
    EXPECT_EQ(vars[5].coords[0].first, "policy");
    EXPECT_EQ(vars[5].coords[1].second, "110%");

    // Patches really applied, base untouched.
    EXPECT_EQ(vars[3].scenario.placement, sim::PlacementPolicy::QosAware);
    EXPECT_DOUBLE_EQ(vars[5].scenario.meanLoadFraction, 1.1);
    EXPECT_EQ(base.placement, sim::PlacementPolicy::RoundRobin);
    EXPECT_DOUBLE_EQ(base.meanLoadFraction, 0.0);
}

TEST(ScenarioSweepDeath, DuplicateAxisNameIsFatal)
{
    // Two axes with one name would expand to colliding "axis=point"
    // labels; over() rejects the collision at registration time.
    Scenario base =
        ScenarioBuilder().cores(1, smallConfig()).requests(0).expect();
    Sweep sweep(base);
    sweep.over("load", {{"70%", [](Scenario &s) {
                             s.meanLoadFraction = 0.7;
                         }}});
    EXPECT_DEATH(sweep.over("load", {{"90%",
                                      [](Scenario &s) {
                                          s.meanLoadFraction = 0.9;
                                      }}}),
                 "duplicate sweep axis 'load'");
}

TEST(ScenarioSweepDeath, DuplicatePointLabelWithinAxisIsFatal)
{
    Scenario base =
        ScenarioBuilder().cores(1, smallConfig()).requests(0).expect();
    Sweep sweep(base);
    EXPECT_DEATH(
        sweep.over("load",
                   {{"70%", [](Scenario &s) { s.meanLoadFraction = 0.7; }},
                    {"70%", [](Scenario &s) { s.meanLoadFraction = 0.9; }}}),
        "duplicate point label '70%'");
}

TEST(ScenarioSweep, SharedPointLabelAcrossAxesStaysUnambiguous)
{
    // The same label on *different* axes is legitimate — the axis name
    // in each "axis=point" coordinate keeps variant labels unique.
    Scenario base =
        ScenarioBuilder().cores(1, smallConfig()).requests(0).expect();
    Sweep sweep(base);
    sweep.over("load", {{"default", [](Scenario &s) {
                             s.meanLoadFraction = 0.7;
                         }}})
        .over("policy", {{"default", [](Scenario &s) {
                              s.placement = sim::PlacementPolicy::QosAware;
                          }}});
    std::vector<Sweep::Variant> vars = sweep.variants();
    ASSERT_EQ(vars.size(), 1u);
    EXPECT_EQ(vars[0].label, "load=default, policy=default");
}

TEST(ScenarioSweep, RunsVariantsThroughTheSharedOperatingPointCache)
{
    sim::OperatingPointCache &cache = sim::OperatingPointCache::instance();
    cache.clear();

    Scenario base = ScenarioBuilder()
                        .cores(1, smallConfig())
                        .requests(300)
                        .expect();
    Sweep sweep(base);
    sweep.over("policy",
               {{"rr",
                 [](Scenario &s) {
                     s.placement = sim::PlacementPolicy::RoundRobin;
                 }},
                {"ll", [](Scenario &s) {
                     s.placement = sim::PlacementPolicy::LeastLoaded;
                 }}});
    std::vector<Sweep::Outcome> outcomes = sweep.run();
    ASSERT_EQ(outcomes.size(), 2u);

    // Identical cores across variants: one measurement, one reuse.
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_GE(cache.hits(), 1u);
    EXPECT_EQ(outcomes[0].result.cores[0].uipc[0],
              outcomes[1].result.cores[0].uipc[0]);
    EXPECT_EQ(outcomes[0].variant.coords[0].second, "rr");
    EXPECT_EQ(outcomes[1].variant.coords[0].second, "ll");
}

TEST(ScenarioSweep, ParallelRunIsBitIdenticalToSerial)
{
    // Sweep::run dispatches variants onto the thread pool; every result
    // must match the serial (threads=1) expansion bit for bit, in the
    // same order — variant independence plus index-addressed slots.
    auto makeSweep = [](unsigned threads) {
        Scenario base = ScenarioBuilder()
                            .cores(2, smallConfig())
                            .requests(400)
                            .threads(threads)
                            .expect();
        Sweep sweep(base);
        sweep.over("policy",
                   {{"rr",
                     [](Scenario &s) {
                         s.placement = sim::PlacementPolicy::RoundRobin;
                     }},
                    {"ll",
                     [](Scenario &s) {
                         s.placement = sim::PlacementPolicy::LeastLoaded;
                     }}})
            .over("load", {{"low",
                            [](Scenario &s) {
                                s.arrivalRatePerMs = 0.0;
                            }},
                           {"explicit", [](Scenario &s) {
                                s.arrivalRatePerMs = 1.0;
                            }}});
        return sweep.run();
    };

    std::vector<Sweep::Outcome> serial = makeSweep(1);
    std::vector<Sweep::Outcome> parallel = makeSweep(4);
    ASSERT_EQ(serial.size(), 4u);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].variant.label, parallel[i].variant.label);
        EXPECT_EQ(serial[i].result.dispatch.latencyMs.p99,
                  parallel[i].result.dispatch.latencyMs.p99);
        EXPECT_EQ(serial[i].result.dispatch.elapsedMs,
                  parallel[i].result.dispatch.elapsedMs);
        EXPECT_EQ(serial[i].result.cores[0].uipc[0],
                  parallel[i].result.cores[0].uipc[0]);
    }
}

} // namespace
} // namespace stretch::scenario

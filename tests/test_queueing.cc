/**
 * @file
 * Tests for the queueing/QoS substrate: arrival processes, the Elfen-style
 * duty-cycle modulator, the request simulator against queueing theory, the
 * peak-load/slack studies, and the diurnal traces.
 */

#include <array>
#include <cmath>

#include <gtest/gtest.h>

#include "queueing/arrivals.h"
#include "queueing/diurnal.h"
#include "queueing/event_engine.h"
#include "queueing/load_study.h"
#include "queueing/modulation.h"
#include "queueing/request_sim.h"
#include "util/rng.h"

namespace stretch::queueing
{
namespace
{

TEST(Arrivals, PoissonMeanRate)
{
    Rng rng(5);
    PoissonArrivals arr(2.0); // 2 requests/ms
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += arr.next(rng);
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Arrivals, MmppMeanRatePreserved)
{
    Rng rng(7);
    MmppArrivals arr(2.0, 4.0, 100.0, 20.0);
    double sum = 0;
    const int n = 300000;
    for (int i = 0; i < n; ++i)
        sum += arr.next(rng);
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Arrivals, MmppStateRates)
{
    MmppArrivals arr(1.0, 3.0, 100.0, 50.0);
    EXPECT_GT(arr.stateRate(1), arr.stateRate(0));
    EXPECT_NEAR(arr.stateRate(1) / arr.stateRate(0), 3.0, 1e-9);
}

TEST(Arrivals, MmppBurstierThanPoisson)
{
    // Squared coefficient of variation of interarrivals must exceed 1
    // (Poisson) when burst switching is present.
    Rng rng(9);
    MmppArrivals arr(1.0, 8.0, 50.0, 10.0);
    double sum = 0, sumsq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double g = arr.next(rng);
        sum += g;
        sumsq += g * g;
    }
    double mean = sum / n;
    double var = sumsq / n - mean * mean;
    EXPECT_GT(var / (mean * mean), 1.2);
}

TEST(Modulator, FullDutyIsIdentity)
{
    DutyCycleModulator mod(1.0, 0.25);
    EXPECT_NEAR(mod.finish(3.7, 2.5), 6.2, 1e-12);
}

TEST(Modulator, HalfDutyDoublesLongWork)
{
    DutyCycleModulator mod(0.5, 0.25);
    // Long demand: effective rate is duty-fraction of the core.
    double t = mod.finish(0.0, 10.0);
    EXPECT_NEAR(t, 20.0, 0.5);
}

TEST(Modulator, StartInsideUnavailableWindowWaits)
{
    DutyCycleModulator mod(0.5, 1.0); // available [k, k+0.5)
    // Start at 0.75 (unavailable): work begins at 1.0.
    EXPECT_NEAR(mod.finish(0.75, 0.25), 1.25, 1e-12);
}

TEST(Modulator, ShortWorkWithinWindow)
{
    DutyCycleModulator mod(0.5, 1.0);
    EXPECT_NEAR(mod.finish(0.1, 0.2), 0.3, 1e-12);
}

TEST(ArrivalProcess, PoissonVariantMatchesRawPoisson)
{
    Rng a(11), b(11);
    PoissonArrivals raw(2.0);
    ArrivalProcess wrapped = ArrivalProcess::poisson(2.0);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(wrapped.next(a), raw.next(b));
}

TEST(ArrivalProcess, MmppVariantMatchesRawMmpp)
{
    Rng a(13), b(13);
    MmppArrivals raw(1.0, 4.0, 100.0, 20.0);
    ArrivalProcess wrapped = ArrivalProcess::mmpp(1.0, 4.0, 100.0, 20.0);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(wrapped.next(a), raw.next(b));
}

TEST(Arrivals, DiurnalMeanRateIsPeakTimesMeanLoad)
{
    auto trace = DiurnalTrace::webSearchCluster();
    const double peak = 2.0, ms_per_hour = 100.0;
    DiurnalArrivals arr(peak, trace, ms_per_hour);
    Rng rng(17);
    // Count arrivals over exactly five replayed days: thinning realises
    // rate peak * loadAt(t), whose day-average is peak * meanLoad.
    const double horizon = 5.0 * 24.0 * ms_per_hour;
    double t = 0.0;
    std::uint64_t count = 0;
    for (;;) {
        t += arr.next(rng);
        if (t >= horizon)
            break;
        ++count;
    }
    double expected = peak * trace.meanLoad() * horizon;
    EXPECT_NEAR(static_cast<double>(count), expected, 0.05 * expected);
}

TEST(Arrivals, DiurnalNightIsLighterThanMidday)
{
    auto trace = DiurnalTrace::webSearchCluster();
    DiurnalArrivals arr(3.0, trace, 50.0);
    Rng rng(23);
    // Arrivals binned by replayed hour-of-day across several days: the
    // overnight trough (02:00-05:00) must draw far fewer requests than
    // the midday plateau (12:00-15:00).
    std::array<std::uint64_t, 24> byHour{};
    double t = 0.0;
    while (t < 4.0 * 24.0 * 50.0) {
        t += arr.next(rng);
        byHour[static_cast<std::size_t>(std::fmod(t / 50.0, 24.0))] += 1;
    }
    std::uint64_t night = byHour[2] + byHour[3] + byHour[4];
    std::uint64_t midday = byHour[12] + byHour[13] + byHour[14];
    EXPECT_LT(static_cast<double>(night), 0.6 * static_cast<double>(midday));
}

TEST(Arrivals, DiurnalIsDeterministicInSeed)
{
    auto trace = DiurnalTrace::youtubeCluster();
    DiurnalArrivals a(2.0, trace, 40.0), b(2.0, trace, 40.0);
    Rng ra(31), rb(31);
    for (int i = 0; i < 2000; ++i)
        EXPECT_EQ(a.next(ra), b.next(rb));
}

TEST(ArrivalProcess, DiurnalVariantMatchesRawDiurnal)
{
    auto trace = DiurnalTrace::webSearchCluster();
    Rng a(37), b(37);
    DiurnalArrivals raw(1.5, trace, 60.0);
    ArrivalProcess wrapped = ArrivalProcess::diurnal(1.5, trace, 60.0);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(wrapped.next(a), raw.next(b));
}

TEST(DiurnalArrivalsThinning, EmpiricalHourlyRatesFollowTheTrace)
{
    // Lewis-Shedler thinning must reproduce the non-homogeneous rate:
    // bucket one replayed day of arrivals by hour and compare each
    // hour's count against peak_rate x mean-load-of-hour (for the
    // piecewise-linear curve, the average of the bounding samples).
    auto trace = DiurnalTrace::webSearchCluster();
    const double peak = 40.0;        // requests per ms
    const double ms_per_hour = 50.0; // 2000 expected at a 100%-load hour
    DiurnalArrivals arrivals(peak, trace, ms_per_hour);
    Rng rng(123);

    std::array<std::uint64_t, 24> counts{};
    const double day_ms = 24.0 * ms_per_hour;
    double t = 0.0;
    std::uint64_t total = 0;
    for (;;) {
        t += arrivals.next(rng);
        if (t >= day_ms)
            break;
        ++counts[static_cast<std::size_t>(t / ms_per_hour)];
        ++total;
    }

    for (std::size_t h = 0; h < 24; ++h) {
        double mean_load =
            (trace.hourly()[h] + trace.hourly()[(h + 1) % 24]) / 2.0;
        double expected = peak * ms_per_hour * mean_load;
        // Poisson-count tolerance: 15% relative or 5 standard
        // deviations, whichever is looser (low-load hours are noisy).
        double tol = std::max(0.15 * expected, 5.0 * std::sqrt(expected));
        EXPECT_NEAR(static_cast<double>(counts[h]), expected, tol)
            << "hour " << h;
    }

    // The whole day integrates to peak x meanLoad x 24h.
    double expected_total = peak * trace.meanLoad() * day_ms;
    EXPECT_NEAR(static_cast<double>(total), expected_total,
                0.05 * expected_total);

    // And the shape is right: the midday plateau far outdraws the
    // overnight trough.
    std::uint64_t night = counts[2] + counts[3] + counts[4];
    std::uint64_t midday = counts[12] + counts[13] + counts[14];
    EXPECT_LT(static_cast<double>(night),
              0.75 * static_cast<double>(midday));
}

// ---- The shared discrete-event engine ---------------------------------

/** Fixed-gap, fixed-demand callbacks for exact-arithmetic engine tests. */
EventEngine::Callbacks
fixedTraffic(EventEngine &engine, double gap, double demand)
{
    EventEngine::Callbacks cb;
    cb.nextGap = [gap] { return gap; };
    cb.nextDemand = [demand](std::uint32_t) { return demand; };
    cb.place = [&engine](double, double, std::uint32_t) {
        return engine.leastFreeServer();
    };
    cb.finish = [](std::size_t, double start, double d) { return start + d; };
    return cb;
}

TEST(EventEngine, ConservesRequestsAndDeliversInFinishOrder)
{
    Rng rng(5);
    EventEngine engine(3);
    EventEngine::Callbacks cb;
    cb.nextGap = [&] { return rng.exponential(0.4); };
    cb.nextDemand = [&](std::uint32_t) { return rng.exponential(1.0); };
    cb.place = [&](double, double, std::uint32_t) {
        return engine.leastFreeServer();
    };
    cb.finish = [](std::size_t, double start, double d) { return start + d; };
    std::uint64_t completions = 0;
    double last_finish = 0.0;
    cb.onComplete = [&](const Completion &c) {
        ++completions;
        EXPECT_GE(c.finishMs, last_finish);
        EXPECT_GE(c.startMs, c.arrivalMs);
        EXPECT_GE(c.latencyMs(), 0.0);
        last_finish = c.finishMs;
    };
    engine.run(5000, cb);

    EXPECT_EQ(completions, 5000u);
    std::uint64_t placed = 0;
    for (const ServerState &s : engine.servers())
        placed += s.placed;
    EXPECT_EQ(placed, 5000u);
    EXPECT_GT(engine.elapsedMs(), 0.0);
}

TEST(EventEngine, QuantumBoundariesInterleaveWithCompletions)
{
    EventEngine engine(1);
    // One request per ms, each needing 0.4 ms: all events are exact.
    EventEngine::Callbacks cb = fixedTraffic(engine, 1.0, 0.4);
    cb.quantumMs = 1.0;
    std::vector<double> boundaries;
    double last_completion_before_boundary = 0.0;
    cb.onQuantum = [&](double t) { boundaries.push_back(t); };
    cb.onComplete = [&](const Completion &c) {
        // Every completion at or before a boundary is delivered first.
        if (!boundaries.empty()) {
            EXPECT_GE(c.finishMs, boundaries.back());
        }
        last_completion_before_boundary = c.finishMs;
    };
    engine.run(10, cb);

    // Arrivals at 1..10 ms, finishes at 1.4..10.4: boundaries 1..10 fire.
    ASSERT_GE(boundaries.size(), 9u);
    for (std::size_t i = 0; i < boundaries.size(); ++i)
        EXPECT_DOUBLE_EQ(boundaries[i], static_cast<double>(i + 1));
}

TEST(EventEngine, BacklogAndLeastFreeTrackQueues)
{
    EventEngine engine(2);
    EventEngine::Callbacks cb = fixedTraffic(engine, 0.0, 3.0);
    engine.run(3, cb); // t=0: two servers take one request, one queues
    // Server 0 got requests 0 and 2 (3 + 3 ms), server 1 got request 1.
    EXPECT_DOUBLE_EQ(engine.backlogMs(0, 0.0), 6.0);
    EXPECT_DOUBLE_EQ(engine.backlogMs(1, 0.0), 3.0);
    EXPECT_EQ(engine.leastFreeServer(), 1u);
    EXPECT_DOUBLE_EQ(engine.backlogMs(1, 2.0), 1.0);
    EXPECT_DOUBLE_EQ(engine.backlogMs(1, 5.0), 0.0); // drained
}

TEST(EventEngine, ChargeCapacityDelaysTheQueue)
{
    EventEngine idle(1);
    EventEngine::Callbacks cb = fixedTraffic(idle, 1.0, 0.5);
    double last = 0.0;
    cb.onComplete = [&](const Completion &c) { last = c.finishMs; };
    idle.run(5, cb);
    double unperturbed = last;

    EventEngine charged(1);
    cb = fixedTraffic(charged, 1.0, 0.5);
    cb.onComplete = [&](const Completion &c) { last = c.finishMs; };
    cb.quantumMs = 1.0;
    // A 0.25 ms capacity charge at every boundary pushes completions out.
    cb.onQuantum = [&](double t) { charged.chargeCapacity(0, t, 0.25); };
    charged.run(5, cb);
    EXPECT_GT(last, unperturbed);
}

TEST(Modulator, MonotonicInDemand)
{
    DutyCycleModulator mod(0.3, 0.25);
    double prev = 0.0;
    for (double d = 0.05; d < 3.0; d += 0.05) {
        double t = mod.finish(0.2, d);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(RequestSim, LatencyAtLeastServiceTime)
{
    const ServiceSpec &spec = serviceSpec("web_search");
    SimKnobs knobs;
    knobs.requests = 5000;
    LatencyResult r = simulateService(spec, 0.001, knobs); // near-idle
    // Near-idle latency ~ service time distribution.
    EXPECT_GT(r.meanMs, spec.meanServiceMs * 0.7);
    EXPECT_LT(r.meanMs, spec.meanServiceMs * 1.5);
    EXPECT_GT(r.p99Ms, r.meanMs);
}

TEST(RequestSim, Mm1MeanMatchesTheory)
{
    // Single worker, sigma ~ 0: M/D/1-like. Use a tiny-sigma lognormal and
    // Poisson-ish arrivals via a burst ratio of 1.
    ServiceSpec spec;
    spec.name = "mm1";
    spec.meanServiceMs = 1.0;
    spec.logSigma = 0.05;
    spec.workers = 1;
    spec.burstRatio = 1.0;
    spec.dwellLowMs = 1000.0;
    spec.dwellHighMs = 1000.0;
    SimKnobs knobs;
    knobs.requests = 150000;
    double rho = 0.5;
    LatencyResult r = simulateService(spec, rho, knobs);
    // M/D/1: W = S * (1 + rho/(2(1-rho))) = 1.5 at rho = 0.5.
    EXPECT_NEAR(r.meanMs, 1.5, 0.15);
}

TEST(RequestSim, TailGrowsWithLoad)
{
    const ServiceSpec &spec = serviceSpec("web_search");
    SimKnobs knobs;
    knobs.requests = 30000;
    double base = static_cast<double>(spec.workers) / spec.meanServiceMs;
    double prev = 0.0;
    for (double rho : {0.2, 0.5, 0.8}) {
        LatencyResult r = simulateService(spec, base * rho, knobs);
        EXPECT_GT(r.p99Ms, prev);
        prev = r.p99Ms;
    }
}

TEST(RequestSim, PerfScaleSlowsService)
{
    const ServiceSpec &spec = serviceSpec("data_serving");
    SimKnobs knobs;
    knobs.requests = 20000;
    LatencyResult fast = simulateService(spec, 0.2, knobs);
    knobs.perfScale = 2.0;
    LatencyResult slow = simulateService(spec, 0.2, knobs);
    EXPECT_GT(slow.meanMs, fast.meanMs * 1.5);
}

TEST(RequestSim, DutyCycleInflatesLatency)
{
    const ServiceSpec &spec = serviceSpec("web_search");
    SimKnobs knobs;
    knobs.requests = 20000;
    LatencyResult full = simulateService(spec, 0.05, knobs);
    knobs.duty = 0.3;
    LatencyResult modulated = simulateService(spec, 0.05, knobs);
    EXPECT_GT(modulated.meanMs, full.meanMs * 2.0);
}

TEST(RequestSim, Deterministic)
{
    const ServiceSpec &spec = serviceSpec("media_streaming");
    SimKnobs knobs;
    knobs.requests = 5000;
    LatencyResult a = simulateService(spec, 0.01, knobs);
    LatencyResult b = simulateService(spec, 0.01, knobs);
    EXPECT_EQ(a.p99Ms, b.p99Ms);
    EXPECT_EQ(a.meanMs, b.meanMs);
}

TEST(RequestSim, TailSelectsPercentile)
{
    LatencyResult r;
    r.p50Ms = 1;
    r.p95Ms = 2;
    r.p99Ms = 3;
    r.p999Ms = 4;
    EXPECT_EQ(r.tail(95.0), 2.0);
    EXPECT_EQ(r.tail(99.0), 3.0);
    EXPECT_EQ(r.tail(99.9), 4.0);
}

class ServiceSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ServiceSweep, PeakLoadMeetsTargetAndBeyondViolates)
{
    const ServiceSpec &spec = serviceSpec(GetParam());
    StudyKnobs knobs;
    knobs.requests = 20000;
    double peak = peakLoadRate(spec, knobs);
    EXPECT_GT(peak, 0.0);
    SimKnobs sim;
    sim.requests = 20000;
    sim.seed = knobs.seed;
    double at_peak =
        simulateService(spec, peak, sim).tail(spec.tailPercentile);
    double beyond =
        simulateService(spec, peak * 1.4, sim).tail(spec.tailPercentile);
    EXPECT_LE(at_peak, spec.qosTargetMs * 1.10);
    EXPECT_GT(beyond, spec.qosTargetMs);
}

TEST_P(ServiceSweep, SlackShrinksWithLoad)
{
    const ServiceSpec &spec = serviceSpec(GetParam());
    StudyKnobs knobs;
    knobs.requests = 15000;
    double peak = peakLoadRate(spec, knobs);
    double req20 = requiredPerfFraction(spec, peak, 0.2, knobs);
    double req80 = requiredPerfFraction(spec, peak, 0.8, knobs);
    EXPECT_LT(req20, req80);
    EXPECT_LT(req20, 0.60); // ample slack at 20% load (paper: 10-45%)
    EXPECT_GT(req80, 0.55); // little slack at 80% load (paper: >= 80%)
}

TEST_P(ServiceSweep, TolerableSlowdownShrinksWithLoad)
{
    const ServiceSpec &spec = serviceSpec(GetParam());
    StudyKnobs knobs;
    knobs.requests = 15000;
    double peak = peakLoadRate(spec, knobs);
    double tol20 = tolerableSlowdown(spec, peak, 0.2, 16.0, knobs);
    double tol90 = tolerableSlowdown(spec, peak, 0.9, 16.0, knobs);
    EXPECT_GE(tol20, tol90);
    EXPECT_GT(tol20, 1.5); // can absorb the ~14% SMT colocation loss
}

INSTANTIATE_TEST_SUITE_P(
    AllServices, ServiceSweep,
    ::testing::Values("data_serving", "web_serving", "web_search",
                      "media_streaming"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(Diurnal, BoundsAndPeriodicity)
{
    auto trace = DiurnalTrace::webSearchCluster();
    for (double h = 0; h < 48; h += 0.5) {
        double v = trace.loadAt(h);
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
        EXPECT_NEAR(trace.loadAt(h), trace.loadAt(h + 24.0), 1e-9);
    }
    EXPECT_NEAR(trace.loadAt(14.0), 1.0, 1e-9); // peak at 2pm
}

TEST(Diurnal, WebSearchHoursBelow85)
{
    auto trace = DiurnalTrace::webSearchCluster();
    double h = trace.hoursBelow(0.85);
    EXPECT_GT(h, 9.0); // paper: ~11 hours
    EXPECT_LT(h, 14.0);
}

TEST(Diurnal, YoutubeHoursBelow85)
{
    auto trace = DiurnalTrace::youtubeCluster();
    double h = trace.hoursBelow(0.85);
    EXPECT_GT(h, 15.0); // paper: ~17 hours
    EXPECT_LT(h, 19.0);
}

TEST(Diurnal, InterpolationIsPiecewiseLinear)
{
    auto trace = DiurnalTrace::youtubeCluster();
    double a = trace.hourly()[3], b = trace.hourly()[4];
    EXPECT_NEAR(trace.loadAt(3.5), (a + b) / 2, 1e-9);
}

TEST(Diurnal, MeanLoadMatchesNumericIntegral)
{
    auto trace = DiurnalTrace::webSearchCluster();
    double integral = 0.0;
    const double step = 0.005;
    for (double h = 0.0; h < 24.0; h += step)
        integral += trace.loadAt(h) * step / 24.0;
    EXPECT_NEAR(trace.meanLoad(), integral, 1e-3);
    EXPECT_GT(trace.meanLoad(), 0.0);
    EXPECT_LE(trace.meanLoad(), 1.0);
}

} // namespace
} // namespace stretch::queueing

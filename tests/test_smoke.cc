/**
 * @file
 * End-to-end smoke tests: the simulated machine boots, runs every workload
 * profile, and produces sane instruction throughput.
 */

#include <gtest/gtest.h>

#include "sim/runner.h"
#include "workload/profiles.h"

namespace stretch
{
namespace
{

TEST(Smoke, RegistryHas33Profiles)
{
    EXPECT_EQ(workloads::latencySensitiveNames().size(), 4u);
    EXPECT_EQ(workloads::batchNames().size(), 29u);
}

TEST(Smoke, IsolatedWebSearchRuns)
{
    sim::RunConfig cfg;
    cfg.samples = 1;
    cfg.warmupOps = 3000;
    cfg.measureOps = 8000;
    sim::RunResult r = sim::runIsolated("web_search", cfg);
    EXPECT_GT(r.uipc[0], 0.05);
    EXPECT_LT(r.uipc[0], 6.0);
}

TEST(Smoke, ColocationRuns)
{
    sim::RunConfig cfg;
    cfg.workload0 = "web_search";
    cfg.workload1 = "zeusmp";
    cfg.samples = 1;
    cfg.warmupOps = 3000;
    cfg.measureOps = 8000;
    sim::RunResult r = sim::run(cfg);
    EXPECT_GT(r.uipc[0], 0.02);
    EXPECT_GT(r.uipc[1], 0.02);
}

/**
 * Full latency-sensitive x batch sweep with a short measurement window.
 * Registered in CTest as its own test with the "slow" label, so
 * `ctest -LE slow` runs the quick suite and `ctest -L slow` (or a plain
 * `ctest`) covers every colocation pair the paper evaluates.
 */
TEST(SmokeSlow, EveryColocationPairProducesSaneUipc)
{
    sim::RunConfig base;
    base.samples = 1;
    base.warmupOps = 2000;
    base.measureOps = 5000;

    for (const std::string &ls : workloads::latencySensitiveNames()) {
        for (const std::string &batch : workloads::batchNames()) {
            sim::RunConfig cfg = base;
            cfg.workload0 = ls;
            cfg.workload1 = batch;
            sim::RunResult r = sim::run(cfg);
            EXPECT_GT(r.uipc[0], 0.01) << ls << " + " << batch;
            EXPECT_LT(r.uipc[0], 6.0) << ls << " + " << batch;
            EXPECT_GT(r.uipc[1], 0.01) << ls << " + " << batch;
            EXPECT_LT(r.uipc[1], 6.0) << ls << " + " << batch;
        }
    }
}

} // namespace
} // namespace stretch
